// Tests for the observability layer: counter registry + thread-local
// activation, pmf-operation instrumentation, the JSON helpers, JSONL trace
// round-trips, and the scheduler/engine telemetry wiring.
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/scheduler.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "pmf/pmf.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "test_support.hpp"

namespace ecdra {
namespace {

// ------------------------------- counters ---------------------------------

TEST(Counters, StartsEmptyAndTracksDerivedRates) {
  obs::Counters counters;
  EXPECT_TRUE(counters.empty());
  EXPECT_EQ(counters.decisions(), 0u);
  EXPECT_DOUBLE_EQ(counters.ready_pmf_hit_rate(), 0.0);

  counters.tasks_mapped = 3;
  counters.tasks_discarded = 2;
  counters.ready_pmf_hits = 3;
  counters.ready_pmf_misses = 1;
  EXPECT_FALSE(counters.empty());
  EXPECT_EQ(counters.decisions(), 5u);
  EXPECT_DOUBLE_EQ(counters.ready_pmf_hit_rate(), 0.75);
}

TEST(Counters, MergeAddsEverySlotIncludingDecisionTime) {
  // Set every registered slot to a distinct value through the field table,
  // so a newly added counter cannot silently escape Merge.
  obs::Counters a;
  obs::Counters b;
  std::uint64_t value = 1;
  for (const obs::CounterField& field : obs::CounterFields()) {
    a.*(field.slot) = value;
    b.*(field.slot) = 10 * value;
    ++value;
  }
  a.decision_seconds = 0.25;
  b.decision_seconds = 0.5;

  a.Merge(b);
  value = 1;
  for (const obs::CounterField& field : obs::CounterFields()) {
    EXPECT_EQ(a.*(field.slot), 11 * value) << field.name;
    ++value;
  }
  EXPECT_DOUBLE_EQ(a.decision_seconds, 0.75);
}

TEST(Counters, FieldTableCoversTheHeadlineSlots) {
  bool saw_mapped = false;
  bool saw_hits = false;
  bool saw_failures = false;
  bool saw_remapped = false;
  for (const obs::CounterField& field : obs::CounterFields()) {
    if (field.name == "tasks_mapped") saw_mapped = true;
    if (field.name == "ready_pmf_hits") saw_hits = true;
    if (field.name == "failures_injected") saw_failures = true;
    if (field.name == "tasks_remapped") saw_remapped = true;
  }
  EXPECT_TRUE(saw_mapped);
  EXPECT_TRUE(saw_hits);
  EXPECT_TRUE(saw_failures);
  EXPECT_TRUE(saw_remapped);
}

TEST(Counters, ScopeRoutesBumpsAndNests) {
  ASSERT_EQ(obs::ActiveCounters(), nullptr);
  obs::Bump(&obs::Counters::pmf_convolutions);  // no scope: no-op, no crash

  obs::Counters outer;
  {
    const obs::CountersScope outer_scope(&outer);
    obs::Bump(&obs::Counters::pmf_convolutions);
    EXPECT_EQ(outer.pmf_convolutions, 1u);

    {
      // A null scope leaves the outer counters active.
      const obs::CountersScope noop(nullptr);
      obs::Bump(&obs::Counters::pmf_convolutions);
      EXPECT_EQ(outer.pmf_convolutions, 2u);
    }

    obs::Counters inner;
    {
      const obs::CountersScope inner_scope(&inner);
      obs::Bump(&obs::Counters::pmf_convolutions);
      EXPECT_EQ(inner.pmf_convolutions, 1u);
      EXPECT_EQ(outer.pmf_convolutions, 2u);
    }
    EXPECT_EQ(obs::ActiveCounters(), &outer);
  }
  EXPECT_EQ(obs::ActiveCounters(), nullptr);
}

TEST(Counters, PmfOperationsCountOnlyInsideAScope) {
  const pmf::Pmf x = test::TwoPoint(1.0, 3.0);
  const pmf::Pmf y = test::TwoPoint(2.0, 4.0);

  (void)pmf::Convolve(x, y);
  (void)pmf::ProbSumLeq(x, y, 5.0);

  obs::Counters counters;
  {
    const obs::CountersScope scope(&counters);
    (void)pmf::Convolve(x, y);
    (void)pmf::ProbSumLeq(x, y, 5.0);
    (void)x.TruncateBelow(2.0);
    (void)x.Compact(10);  // support of 2 <= 10: no merge, not counted
    (void)pmf::Convolve(x, y).Compact(1);  // 4 impulses -> 1: counted
  }
  EXPECT_EQ(counters.pmf_convolutions, 2u);
  EXPECT_EQ(counters.pmf_prob_sum_leq, 1u);
  EXPECT_EQ(counters.pmf_truncations, 1u);
  EXPECT_EQ(counters.pmf_compactions, 1u);
}

// --------------------------------- json -----------------------------------

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json::Escape("plain"), "plain");
  EXPECT_EQ(obs::json::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json::Escape("line\nbreak\t!"), "line\\nbreak\\t!");
  EXPECT_EQ(obs::json::Escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, ParsesTheTraceSubset) {
  const auto value = obs::json::Parse(
      R"({"s":"x\"y","n":-1.5e2,"b":true,"z":null,"a":[1,2],"o":{"k":3}})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Find("s")->AsString(), "x\"y");
  EXPECT_DOUBLE_EQ(value->Find("n")->AsNumber(), -150.0);
  EXPECT_TRUE(value->Find("b")->AsBool());
  EXPECT_TRUE(value->Find("z")->is_null());
  ASSERT_EQ(value->Find("a")->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(value->Find("a")->AsArray()[1].AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(value->Find("o")->Find("k")->AsNumber(), 3.0);
  EXPECT_EQ(value->Find("missing"), nullptr);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::json::Parse("").has_value());
  EXPECT_FALSE(obs::json::Parse("{").has_value());
  EXPECT_FALSE(obs::json::Parse("[1,]").has_value());
  EXPECT_FALSE(obs::json::Parse("{} trailing").has_value());
  EXPECT_FALSE(obs::json::Parse("{'single':1}").has_value());
}

// --------------------------------- trace ----------------------------------

obs::MappingDecisionRecord AssignedDecision() {
  obs::MappingDecisionRecord record;
  record.trial = 7;
  record.task_id = 42;
  record.time = 12.5;
  record.deadline = 99.0;
  record.assigned = true;
  record.flat_core = 3;
  record.pstate = 1;
  record.eet = 10.25;
  record.eec = 1025.0;
  record.rho = 0.875;
  record.candidates_generated = 40;
  record.stages = {{"en", 16, 24}, {"rob", 4, 20}};
  record.decision_us = 33.5;
  return record;
}

TEST(Trace, AssignedDecisionRoundTripsThroughJsonl) {
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(AssignedDecision());

  std::string line = os.str();
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();

  const auto value = obs::json::Parse(line);
  ASSERT_TRUE(value.has_value()) << line;
  EXPECT_EQ(value->Find("event")->AsString(), "decision");
  EXPECT_DOUBLE_EQ(value->Find("trial")->AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(value->Find("task")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(value->Find("time")->AsNumber(), 12.5);
  EXPECT_DOUBLE_EQ(value->Find("deadline")->AsNumber(), 99.0);
  EXPECT_TRUE(value->Find("assigned")->AsBool());
  EXPECT_DOUBLE_EQ(value->Find("core")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(value->Find("pstate")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(value->Find("eet")->AsNumber(), 10.25);
  EXPECT_DOUBLE_EQ(value->Find("eec")->AsNumber(), 1025.0);
  EXPECT_DOUBLE_EQ(value->Find("rho")->AsNumber(), 0.875);
  EXPECT_DOUBLE_EQ(value->Find("candidates")->AsNumber(), 40.0);
  EXPECT_DOUBLE_EQ(value->Find("decision_us")->AsNumber(), 33.5);
  EXPECT_EQ(value->Find("discard_stage"), nullptr);

  const auto& stages = value->Find("stages")->AsArray();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].Find("filter")->AsString(), "en");
  EXPECT_DOUBLE_EQ(stages[0].Find("pruned")->AsNumber(), 16.0);
  EXPECT_DOUBLE_EQ(stages[0].Find("survivors")->AsNumber(), 24.0);
  EXPECT_EQ(stages[1].Find("filter")->AsString(), "rob");
}

TEST(Trace, DiscardedDecisionOmitsAssignmentFields) {
  obs::MappingDecisionRecord record;
  record.trial = 1;
  record.task_id = 5;
  record.assigned = false;
  record.discard_stage = "rob";
  record.candidates_generated = 40;
  record.stages = {{"en", 0, 40}, {"rob", 40, 0}};

  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(record);

  const auto value = obs::json::Parse(
      std::string_view(os.str()).substr(0, os.str().size() - 1));
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(value->Find("assigned")->AsBool());
  EXPECT_EQ(value->Find("discard_stage")->AsString(), "rob");
  EXPECT_EQ(value->Find("core"), nullptr);
  EXPECT_EQ(value->Find("pstate"), nullptr);
  EXPECT_EQ(value->Find("rho"), nullptr);
}

TEST(Trace, NonFiniteNumbersSerializeAsNull) {
  obs::MappingDecisionRecord record = AssignedDecision();
  record.eet = std::numeric_limits<double>::infinity();
  record.rho = std::nan("");

  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(record);

  const auto value = obs::json::Parse(
      std::string_view(os.str()).substr(0, os.str().size() - 1));
  ASSERT_TRUE(value.has_value()) << os.str();
  EXPECT_TRUE(value->Find("eet")->is_null());
  EXPECT_TRUE(value->Find("rho")->is_null());
}

TEST(Trace, EnergySnapshotRoundTripsThroughJsonl) {
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(obs::EnergySnapshotRecord{3, 100.5, 2500.0, 1e6, 997500.0});

  const auto value = obs::json::Parse(
      std::string_view(os.str()).substr(0, os.str().size() - 1));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Find("event")->AsString(), "energy");
  EXPECT_DOUBLE_EQ(value->Find("trial")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(value->Find("time")->AsNumber(), 100.5);
  EXPECT_DOUBLE_EQ(value->Find("consumed")->AsNumber(), 2500.0);
  EXPECT_DOUBLE_EQ(value->Find("budget")->AsNumber(), 1e6);
  EXPECT_DOUBLE_EQ(value->Find("estimated_remaining")->AsNumber(), 997500.0);
}

TEST(Trace, FailureFaultEventRoundTripsThroughJsonl) {
  obs::FaultEventRecord record;
  record.trial = 4;
  record.time = 1234.5;
  record.kind = "failure";
  record.flat_core = 17;
  record.tasks_lost = 2;
  record.tasks_requeued = 3;

  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(record);

  const auto value = obs::json::Parse(
      std::string_view(os.str()).substr(0, os.str().size() - 1));
  ASSERT_TRUE(value.has_value()) << os.str();
  EXPECT_EQ(value->Find("event")->AsString(), "fault");
  EXPECT_DOUBLE_EQ(value->Find("trial")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(value->Find("time")->AsNumber(), 1234.5);
  EXPECT_EQ(value->Find("kind")->AsString(), "failure");
  EXPECT_DOUBLE_EQ(value->Find("core")->AsNumber(), 17.0);
  EXPECT_DOUBLE_EQ(value->Find("tasks_lost")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(value->Find("tasks_requeued")->AsNumber(), 3.0);
  // Throttle-only field stays out of failure records.
  EXPECT_EQ(value->Find("pstate_floor"), nullptr);
}

TEST(Trace, ThrottleFaultEventCarriesFloorOnly) {
  obs::FaultEventRecord record;
  record.trial = 1;
  record.time = 10.0;
  record.kind = "throttle_start";
  record.flat_core = 5;
  record.pstate_floor = 2;

  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(record);

  const auto value = obs::json::Parse(
      std::string_view(os.str()).substr(0, os.str().size() - 1));
  ASSERT_TRUE(value.has_value()) << os.str();
  EXPECT_EQ(value->Find("kind")->AsString(), "throttle_start");
  EXPECT_DOUBLE_EQ(value->Find("pstate_floor")->AsNumber(), 2.0);
  EXPECT_EQ(value->Find("tasks_lost"), nullptr);
  EXPECT_EQ(value->Find("tasks_requeued"), nullptr);
}

TEST(Trace, RemapDecisionCarriesFlagAndBaselineOmitsIt) {
  obs::MappingDecisionRecord record = AssignedDecision();
  record.remap = true;

  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.Record(record);
  sink.Record(AssignedDecision());  // baseline: no remap key at all

  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const auto remapped = obs::json::Parse(line);
  ASSERT_TRUE(remapped.has_value());
  ASSERT_NE(remapped->Find("remap"), nullptr);
  EXPECT_TRUE(remapped->Find("remap")->AsBool());
  ASSERT_TRUE(std::getline(lines, line));
  const auto plain = obs::json::Parse(line);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->Find("remap"), nullptr);
}

TEST(Trace, SynchronizedSinkForwardsFaultRecords) {
  std::ostringstream os;
  obs::JsonlTraceSink inner(os);
  const std::unique_ptr<obs::TraceSink> sink = obs::MakeSynchronized(inner);
  obs::FaultEventRecord record;
  record.kind = "repair";
  sink->Record(record);
  sink->Flush();
  const auto value = obs::json::Parse(
      std::string_view(os.str()).substr(0, os.str().size() - 1));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Find("event")->AsString(), "fault");
  EXPECT_EQ(value->Find("kind")->AsString(), "repair");
}

TEST(Trace, SynchronizedSinkForwardsRecords) {
  std::ostringstream os;
  obs::JsonlTraceSink inner(os);
  const std::unique_ptr<obs::TraceSink> sink = obs::MakeSynchronized(inner);
  sink->Record(AssignedDecision());
  sink->Record(obs::EnergySnapshotRecord{});
  sink->Flush();
  std::istringstream lines(os.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::json::Parse(line).has_value()) << line;
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Trace, OpenJsonlTraceFileRejectsBadPaths) {
  EXPECT_THROW((void)obs::OpenJsonlTraceFile("/nonexistent-dir/trace.jsonl"),
               std::invalid_argument);
}

// ------------------------- scheduler/engine wiring -------------------------

/// Deterministic single-type delta-pmf table (same scheme as test_engine).
workload::TaskTypeTable DeltaTable(const cluster::Cluster& cluster,
                                   double base) {
  std::vector<pmf::Pmf> pmfs;
  for (std::size_t node = 0; node < cluster.num_nodes(); ++node) {
    for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
      pmfs.push_back(pmf::Pmf::Delta(
          base * cluster.node(node).pstates[s].time_multiplier));
    }
  }
  return workload::TaskTypeTable(1, cluster.num_nodes(), std::move(pmfs));
}

/// Filter that removes every candidate (to force an attributed discard).
class RejectAllFilter final : public core::Filter {
 public:
  void Apply(core::MappingContext& ctx) override { ctx.candidates().clear(); }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "reject-all";
  }
};

class ObsEngineTest : public ::testing::Test {
 protected:
  ObsEngineTest()
      : cluster_(test::SingleCoreCluster()), table_(DeltaTable(cluster_, 10.0)) {}

  [[nodiscard]] sim::TrialResult Run(
      std::vector<workload::Task> tasks, sim::TrialOptions options,
      std::vector<std::unique_ptr<core::Filter>> filters = {}) {
    core::ImmediateModeScheduler scheduler(
        cluster_, table_, core::MakeHeuristic("SQ", util::RngStream(1)),
        std::move(filters), 1e9, tasks.size());
    options.energy_budget = 1e9;
    sim::Engine engine(cluster_, table_, std::move(tasks), scheduler, options,
                       util::RngStream(7));
    return engine.Run();
  }

  cluster::Cluster cluster_;
  workload::TaskTypeTable table_;
};

TEST_F(ObsEngineTest, CountersStayZeroWhenCollectionIsOff) {
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}}, sim::TrialOptions{});
  EXPECT_TRUE(result.counters.empty());
}

TEST_F(ObsEngineTest, CountersRecordMappingsSwitchesAndPmfWork) {
  sim::TrialOptions options;
  options.collect_counters = true;
  // The "rob" filter evaluates every candidate's on-time probability, which
  // drives the ProbSumLeq hot path; with delta pmfs and loose deadlines it
  // prunes nothing.
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}, workload::Task{1, 0, 2.0, 100.0}},
          options, core::MakeFilterChain("rob"));
  const obs::Counters& counters = result.counters;
  EXPECT_EQ(counters.tasks_mapped, 2u);
  EXPECT_EQ(counters.tasks_discarded, 0u);
  // One core x 5 P-states enumerated per arrival.
  EXPECT_EQ(counters.candidates_generated, 10u);
  EXPECT_EQ(counters.pruned_energy + counters.pruned_robustness +
                counters.pruned_other,
            0u);
  // Idle P4 -> P0 for the first task; the second reuses P0.
  EXPECT_GE(counters.pstate_switches, 1u);
  // Candidate evaluation exercises the pmf hot path.
  EXPECT_GT(counters.pmf_prob_sum_leq, 0u);
  EXPECT_GE(counters.decision_seconds, 0.0);
  EXPECT_EQ(counters.decisions(), 2u);
}

TEST_F(ObsEngineTest, DiscardsAreAttributedToTheEmptyingStage) {
  sim::TrialOptions options;
  options.collect_counters = true;
  std::vector<std::unique_ptr<core::Filter>> filters;
  filters.push_back(std::make_unique<RejectAllFilter>());
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}}, options, std::move(filters));
  EXPECT_EQ(result.counters.tasks_discarded, 1u);
  EXPECT_EQ(result.counters.pruned_other, 5u);
  EXPECT_EQ(result.counters.discarded_by_other, 1u);
  EXPECT_EQ(result.discarded, 1u);
}

TEST_F(ObsEngineTest, TraceEmitsOneDecisionAndOneSnapshotPerArrival) {
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sim::TrialOptions options;
  options.collect_counters = true;
  options.trace_sink = &sink;
  options.trial_index = 9;
  std::vector<std::unique_ptr<core::Filter>> filters;
  filters.push_back(std::make_unique<RejectAllFilter>());
  (void)Run({workload::Task{0, 0, 1.0, 100.0},
             workload::Task{1, 0, 2.0, 100.0}},
            options, std::move(filters));

  std::istringstream lines(os.str());
  std::string line;
  std::size_t decisions = 0;
  std::size_t snapshots = 0;
  while (std::getline(lines, line)) {
    const auto value = obs::json::Parse(line);
    ASSERT_TRUE(value.has_value()) << line;
    EXPECT_DOUBLE_EQ(value->Find("trial")->AsNumber(), 9.0);
    const std::string& event = value->Find("event")->AsString();
    if (event == "decision") {
      EXPECT_DOUBLE_EQ(value->Find("task")->AsNumber(),
                       static_cast<double>(decisions));
      EXPECT_FALSE(value->Find("assigned")->AsBool());
      EXPECT_EQ(value->Find("discard_stage")->AsString(), "reject-all");
      EXPECT_DOUBLE_EQ(value->Find("candidates")->AsNumber(), 5.0);
      const auto& stages = value->Find("stages")->AsArray();
      ASSERT_EQ(stages.size(), 1u);
      EXPECT_EQ(stages[0].Find("filter")->AsString(), "reject-all");
      EXPECT_DOUBLE_EQ(stages[0].Find("pruned")->AsNumber(), 5.0);
      EXPECT_DOUBLE_EQ(stages[0].Find("survivors")->AsNumber(), 0.0);
      EXPECT_GE(value->Find("decision_us")->AsNumber(), 0.0);
      ++decisions;
    } else {
      EXPECT_EQ(event, "energy");
      ++snapshots;
    }
  }
  EXPECT_EQ(decisions, 2u);
  EXPECT_EQ(snapshots, 2u);
}

TEST_F(ObsEngineTest, AssignedTraceRecordsCarryTheChosenCandidate) {
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sim::TrialOptions options;
  options.trace_sink = &sink;  // trace without counters is allowed
  (void)Run({workload::Task{0, 0, 1.0, 100.0}}, options);

  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const auto value = obs::json::Parse(line);
  ASSERT_TRUE(value.has_value()) << line;
  EXPECT_TRUE(value->Find("assigned")->AsBool());
  EXPECT_DOUBLE_EQ(value->Find("core")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(value->Find("pstate")->AsNumber(), 0.0);  // SQ picks P0
  EXPECT_DOUBLE_EQ(value->Find("eet")->AsNumber(), 10.0);    // delta(10)
  EXPECT_DOUBLE_EQ(value->Find("rho")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(value->Find("time")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(value->Find("deadline")->AsNumber(), 100.0);
}

// ------------------------------ aggregation --------------------------------

TEST(SummaryStatistics, SummarizeTrialsAveragesAndMergesCounters) {
  sim::TrialResult a;
  a.missed_deadlines = 10;
  a.completed = 90;
  a.discarded = 4;
  a.cancelled = 2;
  a.total_energy = 1000.0;
  a.makespan = 50.0;
  a.counters.tasks_mapped = 96;
  a.counters.ready_pmf_hits = 30;

  sim::TrialResult b;
  b.missed_deadlines = 20;
  b.completed = 80;
  b.discarded = 6;
  b.cancelled = 0;
  b.total_energy = 3000.0;
  b.makespan = 70.0;
  b.counters.tasks_mapped = 94;
  b.counters.ready_pmf_hits = 10;

  const std::vector<sim::TrialResult> trials{a, b};
  const sim::SummaryStatistics summary = sim::SummarizeTrials(trials);
  EXPECT_EQ(summary.trials, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_missed, 15.0);
  EXPECT_DOUBLE_EQ(summary.mean_completed, 85.0);
  EXPECT_DOUBLE_EQ(summary.mean_discarded, 5.0);
  EXPECT_DOUBLE_EQ(summary.mean_cancelled, 1.0);
  EXPECT_DOUBLE_EQ(summary.mean_energy, 2000.0);
  EXPECT_DOUBLE_EQ(summary.mean_makespan, 60.0);
  EXPECT_EQ(summary.counters.tasks_mapped, 190u);
  EXPECT_EQ(summary.counters.ready_pmf_hits, 40u);
}

TEST(SummaryStatistics, SummarizeTrialsRequiresAtLeastOneTrial) {
  const std::vector<sim::TrialResult> empty;
  EXPECT_THROW((void)sim::SummarizeTrials(empty), std::invalid_argument);
}

TEST(SummaryStatistics, SummarizeTrialsAveragesProfitFields) {
  sim::TrialResult a;
  a.econ.enabled = true;
  a.econ.revenue = 100.0;
  a.econ.energy_cost = 40.0;
  a.econ.net_profit = 60.0;
  a.econ.value_offered = 500.0;

  sim::TrialResult b;
  b.econ.enabled = true;
  b.econ.revenue = 20.0;
  b.econ.energy_cost = 60.0;
  b.econ.net_profit = -40.0;  // a losing trial: means stay signed
  b.econ.value_offered = 300.0;

  const std::vector<sim::TrialResult> trials{a, b};
  const sim::SummaryStatistics summary = sim::SummarizeTrials(trials);
  EXPECT_EQ(summary.econ_trials, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_revenue, 60.0);
  EXPECT_DOUBLE_EQ(summary.mean_energy_cost, 50.0);
  EXPECT_DOUBLE_EQ(summary.mean_net_profit, 10.0);
  EXPECT_DOUBLE_EQ(summary.mean_value_offered, 400.0);
}

TEST(SummaryStatistics, EconTrialsCountsOnlyMeteredTrials) {
  // A sweep mixing econ-on and econ-off trials (e.g. a resume across a
  // config change would be refused, but a grid can mix series): the means
  // average over all trials, while econ_trials reports how many actually
  // metered — the figure harness keys its profit table off it.
  sim::TrialResult metered;
  metered.econ.enabled = true;
  metered.econ.revenue = 30.0;
  metered.econ.net_profit = 30.0;
  const sim::TrialResult plain;  // econ off: all-zero profit fields

  const std::vector<sim::TrialResult> mixed{metered, plain};
  const sim::SummaryStatistics summary = sim::SummarizeTrials(mixed);
  EXPECT_EQ(summary.econ_trials, 1u);
  EXPECT_DOUBLE_EQ(summary.mean_revenue, 15.0);
  EXPECT_DOUBLE_EQ(summary.mean_net_profit, 15.0);

  const std::vector<sim::TrialResult> plain_only{plain};
  const sim::SummaryStatistics none = sim::SummarizeTrials(plain_only);
  EXPECT_EQ(none.econ_trials, 0u);
  EXPECT_DOUBLE_EQ(none.mean_revenue, 0.0);
}

TEST(SummaryStatistics, AllDroppedEconTrialBillsWithoutRevenue) {
  // Every task dropped or missed: no revenue, but the trial still burned
  // (and is billed for) idle energy — net profit is the full negative bill.
  sim::TrialResult starved;
  starved.econ.enabled = true;
  starved.econ.energy_cost = 75.0;
  starved.econ.net_profit = -75.0;
  starved.econ.value_offered = 800.0;

  const std::vector<sim::TrialResult> trials{starved};
  const sim::SummaryStatistics summary = sim::SummarizeTrials(trials);
  EXPECT_EQ(summary.econ_trials, 1u);
  EXPECT_DOUBLE_EQ(summary.mean_revenue, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean_net_profit, -75.0);
  EXPECT_DOUBLE_EQ(summary.mean_value_offered, 800.0);
}

}  // namespace
}  // namespace ecdra
