#include <set>

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/lightest_load.hpp"
#include "core/mapping_context.hpp"
#include "core/mect.hpp"
#include "core/random_heuristic.hpp"
#include "core/shortest_queue.hpp"
#include "test_support.hpp"
#include "workload/task_type_table.hpp"

namespace ecdra::core {
namespace {

// Fixture: a 3-core cluster (node 0: one core; node 1: two cores) with
// hand-picked ETC means so every scalar is predictable.
class HeuristicTest : public ::testing::Test {
 protected:
  HeuristicTest()
      : cluster_({test::SimpleNode(1, 1, 1.0), test::SimpleNode(2, 1, 0.5)}),
        etc_(1, 2, {100.0, 150.0}),
        table_(cluster_, etc_, 0.25),
        cores_(cluster_.total_cores()) {}

  [[nodiscard]] MappingContext Context(double now = 0.0) {
    return MappingContext(cluster_, table_, cores_, task_, now);
  }

  void MakeBusy(std::size_t flat_core, double exec_duration, double start) {
    exec_holder_.push_back(pmf::Pmf::Delta(exec_duration));
    cores_[flat_core].StartTask(
        robustness::ModeledTask{999, &exec_holder_.back(), 1e9}, start);
  }

  cluster::Cluster cluster_;
  workload::EtcMatrix etc_;
  workload::TaskTypeTable table_;
  std::vector<robustness::CoreQueueModel> cores_;
  workload::Task task_{0, 0, 0.0, 400.0};
  std::deque<pmf::Pmf> exec_holder_;
};

TEST_F(HeuristicTest, ContextEnumeratesAllCoreAndPStatePairs) {
  MappingContext ctx = Context();
  EXPECT_EQ(ctx.candidates().size(), 3u * cluster::kNumPStates);
}

TEST_F(HeuristicTest, ContextComputesEetAndEec) {
  MappingContext ctx = Context();
  for (const Candidate& candidate : ctx.candidates()) {
    const double base = candidate.node == 0 ? 100.0 : 150.0;
    const double multiplier = cluster_.node(candidate.node)
                                  .pstates[candidate.assignment.pstate]
                                  .time_multiplier;
    EXPECT_NEAR(candidate.eet, base * multiplier, 1e-9);
    const double power = cluster_.node(candidate.node)
                             .pstates[candidate.assignment.pstate]
                             .power_watts;
    const double eff = cluster_.node(candidate.node).power_efficiency;
    EXPECT_NEAR(candidate.eec, candidate.eet * power / eff, 1e-9);
  }
}

TEST_F(HeuristicTest, ShortestQueuePrefersEmptyCore) {
  MakeBusy(0, 50.0, 0.0);
  MakeBusy(1, 50.0, 0.0);
  ShortestQueueHeuristic sq;
  MappingContext ctx = Context();
  const auto chosen = sq.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->assignment.flat_core, 2u);
}

TEST_F(HeuristicTest, ShortestQueueBreaksTiesByEet) {
  // All cores empty: minimum EET overall is node 0 (mean 100) at P0.
  ShortestQueueHeuristic sq;
  MappingContext ctx = Context();
  const auto chosen = sq.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->assignment.flat_core, 0u);
  EXPECT_EQ(chosen->assignment.pstate, 0u);
}

TEST_F(HeuristicTest, ShortestQueueCountsWholeQueue) {
  MakeBusy(0, 50.0, 0.0);
  exec_holder_.push_back(pmf::Pmf::Delta(5.0));
  cores_[0].Enqueue(robustness::ModeledTask{1000, &exec_holder_.back(), 1e9});
  MakeBusy(1, 50.0, 0.0);
  MakeBusy(2, 50.0, 0.0);
  // Core 0 has 2 assigned; cores 1-2 have 1; min-EET among cores 1-2 is the
  // candidate with smaller EET: both on node 1 (mean 150) -> first found.
  ShortestQueueHeuristic sq;
  MappingContext ctx = Context();
  const auto chosen = sq.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_NE(chosen->assignment.flat_core, 0u);
  EXPECT_EQ(chosen->assignment.pstate, 0u);
}

TEST_F(HeuristicTest, MectPicksMinimumExpectedCompletion) {
  // Core 0 busy until t = 200; cores 1-2 idle. Node 1 P0 EET = 150 beats
  // waiting for node 0 (200 + 100).
  MakeBusy(0, 200.0, 0.0);
  MectHeuristic mect;
  MappingContext ctx = Context();
  const auto chosen = mect.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_NE(chosen->assignment.flat_core, 0u);
  EXPECT_EQ(chosen->assignment.pstate, 0u);  // P0 always fastest
}

TEST_F(HeuristicTest, MectAlwaysChoosesP0WithoutFilters) {
  // §VII: MECT automatically chooses the highest P-state, whatever the load.
  MectHeuristic mect;
  MappingContext idle_ctx = Context();
  ASSERT_TRUE(mect.Select(idle_ctx).has_value());
  EXPECT_EQ(mect.Select(idle_ctx)->assignment.pstate, 0u);

  MakeBusy(0, 30.0, 0.0);
  MakeBusy(1, 120.0, 0.0);
  MakeBusy(2, 120.0, 0.0);
  MappingContext busy_ctx = Context();
  const auto chosen = mect.Select(busy_ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->assignment.pstate, 0u);
}

TEST_F(HeuristicTest, MectPrefersShortQueueOverFastNode) {
  // Node 0's core queued deep; the expected completion on an idle node-1
  // core wins even though node 0 is faster per task.
  MakeBusy(0, 500.0, 0.0);
  MectHeuristic mect;
  MappingContext ctx = Context();
  const auto chosen = mect.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(cluster_.NodeIndexOf(chosen->assignment.flat_core), 1u);
}

TEST_F(HeuristicTest, LightestLoadMinimizesEecTimesInverseRobustness) {
  LightestLoadHeuristic ll;
  MappingContext ctx = Context();
  const auto chosen = ll.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  // Verify the chosen candidate's load is the global minimum.
  const double chosen_load =
      chosen->eec * (1.0 - ctx.OnTimeProbability(*chosen));
  for (const Candidate& candidate : ctx.candidates()) {
    const double load =
        candidate.eec * (1.0 - ctx.OnTimeProbability(candidate));
    EXPECT_GE(load + 1e-12, chosen_load);
  }
}

TEST_F(HeuristicTest, LightestLoadPrefersCheapCertaintyOverExpensive) {
  // With a generous deadline every assignment is certain (rho ~ 1), so LL
  // load collapses to ~0 everywhere... with rho exactly 1 load is 0; the
  // first such candidate wins. With a tight deadline, low P-states lose
  // their certainty and LL moves away from the slowest states.
  task_.deadline = 130.0;  // only fast assignments certain
  LightestLoadHeuristic ll;
  MappingContext ctx = Context();
  const auto chosen = ll.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  const double rho = ctx.OnTimeProbability(*chosen);
  EXPECT_GT(rho, 0.5);
}

TEST_F(HeuristicTest, RandomChoosesWithinCandidatesUniformly) {
  RandomHeuristic random(util::RngStream(42));
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (int i = 0; i < 600; ++i) {
    MappingContext ctx = Context();
    const auto chosen = random.Select(ctx);
    ASSERT_TRUE(chosen.has_value());
    seen.insert({chosen->assignment.flat_core, chosen->assignment.pstate});
  }
  // 15 possible assignments; after 600 uniform draws all should appear.
  EXPECT_EQ(seen.size(), 15u);
}

TEST_F(HeuristicTest, AllHeuristicsReturnNulloptOnEmptyCandidates) {
  for (const std::string& name : HeuristicNames()) {
    auto heuristic = MakeHeuristic(name, util::RngStream(1));
    MappingContext ctx = Context();
    ctx.candidates().clear();
    EXPECT_EQ(heuristic->Select(ctx), std::nullopt) << name;
  }
}

TEST_F(HeuristicTest, FactoryNamesMatchHeuristics) {
  EXPECT_EQ(MakeHeuristic("SQ", util::RngStream(1))->name(), "SQ");
  EXPECT_EQ(MakeHeuristic("MECT", util::RngStream(1))->name(), "MECT");
  EXPECT_EQ(MakeHeuristic("LL", util::RngStream(1))->name(), "LL");
  EXPECT_EQ(MakeHeuristic("Random", util::RngStream(1))->name(), "Random");
  EXPECT_THROW((void)MakeHeuristic("BOGUS", util::RngStream(1)),
               std::invalid_argument);
}

TEST_F(HeuristicTest, DeterministicHeuristicsAreRepeatable) {
  MakeBusy(1, 75.0, 0.0);
  for (const std::string name : {"SQ", "MECT", "LL"}) {
    auto h1 = MakeHeuristic(name, util::RngStream(1));
    auto h2 = MakeHeuristic(name, util::RngStream(2));  // rng ignored
    MappingContext ctx1 = Context();
    MappingContext ctx2 = Context();
    const auto a = h1->Select(ctx1);
    const auto b = h2->Select(ctx2);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->assignment, b->assignment) << name;
  }
}

TEST_F(HeuristicTest, AverageQueueDepthCountsInFlight) {
  MappingContext empty_ctx = Context();
  EXPECT_DOUBLE_EQ(empty_ctx.AverageQueueDepth(), 0.0);
  MakeBusy(0, 10.0, 0.0);
  MakeBusy(1, 10.0, 0.0);
  exec_holder_.push_back(pmf::Pmf::Delta(5.0));
  cores_[0].Enqueue(robustness::ModeledTask{7, &exec_holder_.back(), 1e9});
  MappingContext ctx = Context();
  EXPECT_DOUBLE_EQ(ctx.AverageQueueDepth(), 1.0);  // 3 in flight / 3 cores
}

}  // namespace
}  // namespace ecdra::core
