// The policy registry layer: registration/diagnostic contracts of the
// generic Registry template, the registry-backed core factories (built-ins
// present, unknown names throw listing the valid keys, composite filter
// variants), and the headline extension path — a heuristic and filter
// registered from *this* translation unit run through the stock RunTrials
// harness by name, with zero factory edits.
#include "policy/registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "batch/batch_heuristics.hpp"
#include "cluster/pstate.hpp"
#include "core/factory.hpp"
#include "core/filter.hpp"
#include "core/gang_placement.hpp"
#include "core/heuristic.hpp"
#include "sim/experiment_runner.hpp"

namespace ecdra {
namespace {

struct Widget {
  explicit Widget(int v) : value(v) {}
  int value;
};

using WidgetRegistry = policy::Registry<Widget, int>;

TEST(Registry, RegisterAndMake) {
  WidgetRegistry registry("widget");
  registry.Register("double", [](int v) {
    return std::make_unique<Widget>(2 * v);
  });
  registry.Register("negate", [](int v) {
    return std::make_unique<Widget>(-v);
  });

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.Contains("double"));
  EXPECT_FALSE(registry.Contains("triple"));
  EXPECT_EQ(registry.Make("double", 21)->value, 42);
  EXPECT_EQ(registry.Make("negate", 5)->value, -5);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"double", "negate"}));
}

TEST(Registry, DuplicateRegistrationThrowsNamingTheKey) {
  WidgetRegistry registry("widget");
  registry.Register("double", [](int v) {
    return std::make_unique<Widget>(2 * v);
  });
  try {
    registry.Register("double", [](int v) {
      return std::make_unique<Widget>(v);
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("double"), std::string::npos);
  }
  // The original registration survives the rejected duplicate.
  EXPECT_EQ(registry.Make("double", 10)->value, 20);
}

TEST(Registry, RejectsEmptyNameAndNullFactory) {
  WidgetRegistry registry("widget");
  EXPECT_THROW(registry.Register("", [](int v) {
    return std::make_unique<Widget>(v);
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.Register("ok", nullptr), std::invalid_argument);
}

TEST(Registry, UnknownNameThrowsListingRegisteredKeys) {
  WidgetRegistry registry("widget");
  registry.Register("alpha", [](int v) {
    return std::make_unique<Widget>(v);
  });
  registry.Register("beta", [](int v) {
    return std::make_unique<Widget>(v);
  });
  try {
    (void)registry.Make("gamma", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown widget 'gamma'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("alpha"), std::string::npos) << message;
    EXPECT_NE(message.find("beta"), std::string::npos) << message;
  }
}

TEST(Registry, EmptyRegistryDiagnosticSaysNone) {
  const WidgetRegistry registry("widget");
  try {
    (void)registry.Make("anything", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("<none>"), std::string::npos);
  }
}

// -- The live core/batch registries --

TEST(CoreRegistries, BuiltInsAreRegistered) {
  for (const std::string& name : core::ExtendedHeuristicNames()) {
    EXPECT_TRUE(core::HeuristicRegistry().Contains(name)) << name;
  }
  EXPECT_TRUE(core::FilterRegistry().Contains("en"));
  EXPECT_TRUE(core::FilterRegistry().Contains("rob"));
  for (const std::string& name : batch::BatchHeuristicNames()) {
    EXPECT_TRUE(batch::BatchHeuristicRegistry().Contains(name)) << name;
  }
  for (const char* name : {"pack", "spread", "serial"}) {
    EXPECT_TRUE(core::GangPlacementRegistry().Contains(name)) << name;
  }
}

TEST(CoreRegistries, UnknownGangPlacementDiagnosticListsKeys) {
  try {
    (void)core::MakeGangPlacement("NoSuchPlacement");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("NoSuchPlacement"), std::string::npos) << message;
    EXPECT_NE(message.find("pack"), std::string::npos) << message;
    EXPECT_NE(message.find("serial"), std::string::npos) << message;
  }
}

TEST(CoreRegistries, UnknownHeuristicDiagnosticListsKeys) {
  try {
    (void)core::MakeHeuristic("NoSuchPolicy", util::RngStream(1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("NoSuchPolicy"), std::string::npos) << message;
    EXPECT_NE(message.find("MECT"), std::string::npos) << message;
    EXPECT_NE(message.find("SQ"), std::string::npos) << message;
  }
}

TEST(CoreRegistries, FilterChainComposesRegisteredNames) {
  EXPECT_TRUE(core::MakeFilterChain("none").empty());

  const auto chain = core::MakeFilterChain("en+rob");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0]->name(), "en");
  EXPECT_EQ(chain[1]->name(), "rob");

  // Order is the variant's order, not registration order.
  const auto reversed = core::MakeFilterChain("rob+en");
  ASSERT_EQ(reversed.size(), 2u);
  EXPECT_EQ(reversed[0]->name(), "rob");

  EXPECT_THROW((void)core::MakeFilterChain("en+"), std::invalid_argument);
  EXPECT_THROW((void)core::MakeFilterChain("+en"), std::invalid_argument);
  EXPECT_THROW((void)core::MakeFilterChain("en+nope"), std::invalid_argument);
}

// -- Extension path: register custom policies from this TU, run by name --

/// Always picks the first candidate (deterministic and trivially wrong on
/// purpose — the point is the wiring, not the schedule quality).
class FirstCandidateHeuristic final : public core::Heuristic {
 public:
  [[nodiscard]] std::optional<core::Candidate> Select(
      const core::MappingContext& ctx) override {
    if (ctx.candidates().empty()) return std::nullopt;
    return ctx.candidates().front();
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "TestFirst";
  }
};

/// Keeps only the deepest-P-state candidates of each core (a filter with a
/// visible, checkable effect).
class DeepestPStateFilter final : public core::Filter {
 public:
  void Apply(core::MappingContext& ctx) override {
    std::erase_if(ctx.candidates(), [](const core::Candidate& c) {
      return c.assignment.pstate != cluster::kNumPStates - 1;
    });
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "test-deepest";
  }
};

}  // namespace
}  // namespace ecdra

ECDRA_REGISTER_HEURISTIC("TestFirst", [](ecdra::util::RngStream) {
  return std::make_unique<ecdra::FirstCandidateHeuristic>();
})
ECDRA_REGISTER_FILTER("test-deepest", [](const ecdra::core::FilterChainOptions&) {
  return std::make_unique<ecdra::DeepestPStateFilter>();
})

namespace ecdra {
namespace {

sim::ExperimentSetup TinySetup() {
  sim::SetupOptions options;
  options.cluster.num_nodes = 3;
  options.cvb.num_task_types = 10;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(10, 20, 1.0 / 8.0, 1.0 / 48.0);
  return sim::BuildExperimentSetup(7, options);
}

TEST(CustomRegistration, RunsThroughStockHarnessByName) {
  const sim::ExperimentSetup setup = TinySetup();
  sim::RunOptions options;
  options.num_trials = 2;
  options.collect_task_records = true;

  // The custom heuristic + filter compose with a built-in filter in a
  // variant string, exactly like the built-ins.
  const std::vector<sim::TrialResult> trials =
      sim::RunTrials(setup, "TestFirst", "en+test-deepest", options);
  ASSERT_EQ(trials.size(), 2u);
  for (const sim::TrialResult& trial : trials) {
    EXPECT_EQ(trial.window_size, setup.window_size);
    // The filter's effect is observable: every assigned task sits in the
    // deepest P-state.
    for (const sim::TaskRecord& record : trial.task_records) {
      if (record.assigned) {
        EXPECT_EQ(record.pstate, cluster::kNumPStates - 1);
      }
    }
  }

  // Determinism holds for custom policies too.
  const std::vector<sim::TrialResult> again =
      sim::RunTrials(setup, "TestFirst", "en+test-deepest", options);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(trials[0].missed_deadlines, again[0].missed_deadlines);
  EXPECT_EQ(trials[0].total_energy, again[0].total_energy);
}

}  // namespace
}  // namespace ecdra
