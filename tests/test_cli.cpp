// End-to-end tests of run_experiment_cli: input validation produces
// one-line diagnostics with non-zero exit codes, and the checkpoint/resume
// flags work through the real binary. The binary path is injected by CMake
// as ECDRA_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult RunCli(const std::string& args) {
  const std::string command = std::string(ECDRA_CLI_PATH) + " " + args +
                              " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  CliResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "ecdra_cli_" + name + ".jsonl";
}

TEST(Cli, UnknownHeuristicListsValidChoices) {
  const CliResult result = RunCli("--heuristic BOGUS");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown heuristic 'BOGUS'"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("SQ"), std::string::npos);
  EXPECT_NE(result.output.find("Random"), std::string::npos);
}

TEST(Cli, UnknownVariantListsValidChoices) {
  const CliResult result = RunCli("--variant=bogus");
  EXPECT_EQ(result.exit_code, 2);
  // The registry's diagnostic names the bad filter and the registered keys;
  // the CLI appends the composite syntax.
  EXPECT_NE(result.output.find("unknown filter 'bogus'"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("en"), std::string::npos);
  EXPECT_NE(result.output.find("rob"), std::string::npos);
  EXPECT_NE(result.output.find("en+rob"), std::string::npos);
}

TEST(Cli, MalformedNumbersAreRejected) {
  EXPECT_EQ(RunCli("--trials 10x").exit_code, 2);
  EXPECT_EQ(RunCli("--trials -3").exit_code, 2);
  EXPECT_EQ(RunCli("--budget-scale nan.3").exit_code, 2);
  EXPECT_EQ(RunCli("--trial-timeout -1").exit_code, 2);
  const CliResult result = RunCli("--seed 12junk");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--seed"), std::string::npos) << result.output;
}

TEST(Cli, MissingValueAndUnknownFlagAreRejected) {
  EXPECT_EQ(RunCli("--trials").exit_code, 2);
  const CliResult result = RunCli("--no-such-flag");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown flag"), std::string::npos)
      << result.output;
}

TEST(Cli, ResumeRequiresCheckpoint) {
  const CliResult result = RunCli("--resume");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--resume requires --checkpoint"),
            std::string::npos)
      << result.output;
}

TEST(Cli, UnknownValidateModeIsRejected) {
  const CliResult result = RunCli("--validate=wat");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("valid: off, cheap, deep"), std::string::npos)
      << result.output;
}

TEST(Cli, CheckpointThenResumeServesTrialsFromTheFile) {
  const std::string path = TempPath("resume_smoke");
  std::remove(path.c_str());

  const CliResult first = RunCli(
      "--trials 2 --heuristic SQ --variant en --checkpoint " + path);
  ASSERT_EQ(first.exit_code, 0) << first.output;
  EXPECT_NE(first.output.find("checkpoint written to"), std::string::npos);

  const CliResult second = RunCli(
      "--trials 2 --heuristic SQ --variant en --resume --checkpoint " + path);
  ASSERT_EQ(second.exit_code, 0) << second.output;
  EXPECT_NE(second.output.find("2 resumed"), std::string::npos)
      << second.output;

  // A mismatched configuration must refuse to resume.
  const CliResult mismatched = RunCli(
      "--trials 2 --heuristic SQ --variant en --seed 99 --resume "
      "--checkpoint " + path);
  EXPECT_EQ(mismatched.exit_code, 2);
  EXPECT_NE(mismatched.output.find("different run"), std::string::npos)
      << mismatched.output;

  std::remove(path.c_str());
}

}  // namespace
