// Invariant-validation layer: mode plumbing, violation folding, fail-fast,
// the seeded pmf mass-loss bug the deep checks must catch, and a clean
// deep-validated run of the paper configuration.
#include <gtest/gtest.h>

#include <stdexcept>

#include "experiment/paper_config.hpp"
#include "pmf/pmf.hpp"
#include "sim/experiment_runner.hpp"
#include "validate/validation.hpp"

namespace ecdra {
namespace {

TEST(ValidationMode, ParseAndName) {
  EXPECT_EQ(validate::ParseValidationMode("off"),
            validate::ValidationMode::kOff);
  EXPECT_EQ(validate::ParseValidationMode("cheap"),
            validate::ValidationMode::kCheap);
  EXPECT_EQ(validate::ParseValidationMode("deep"),
            validate::ValidationMode::kDeep);
  EXPECT_FALSE(validate::ParseValidationMode("DEEP").has_value());
  EXPECT_FALSE(validate::ParseValidationMode("").has_value());
  EXPECT_EQ(validate::ValidationModeName(validate::ValidationMode::kCheap),
            "cheap");
}

TEST(TrialValidator, FoldsRepeatedViolationsPerCheck) {
  validate::TrialValidator validator(validate::ValidationMode::kCheap);
  validator.CountChecks(10);
  validator.Fail("event-monotonicity", 1.0, "first");
  validator.Fail("event-monotonicity", 2.0, "second");
  validator.Fail("energy-budget-cutoff", 3.0, "other");

  const validate::ValidationReport& report = validator.report();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.checks_run, 10u);
  EXPECT_EQ(report.violations, 3u);
  ASSERT_EQ(report.by_check.size(), 2u);
  // First occurrence's detail/time stick; repeats only bump the count.
  EXPECT_EQ(report.by_check[0].check, "event-monotonicity");
  EXPECT_EQ(report.by_check[0].detail, "first");
  EXPECT_EQ(report.by_check[0].sim_time, 1.0);
  EXPECT_EQ(report.by_check[0].occurrences, 2u);
  EXPECT_EQ(report.by_check[1].occurrences, 1u);
}

TEST(TrialValidator, FailFastThrowsNamingTheCheck) {
  validate::TrialValidator validator(validate::ValidationMode::kDeep,
                                     /*fail_fast=*/true);
  try {
    validator.Fail("pmf-mass", 5.0, "mass drifted");
    FAIL() << "expected ValidationError";
  } catch (const validate::ValidationError& error) {
    EXPECT_EQ(error.check(), "pmf-mass");
    EXPECT_NE(std::string(error.what()).find("mass drifted"),
              std::string::npos);
  }
}

TEST(TrialValidator, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(validate::ActiveValidator(), nullptr);
  validate::TrialValidator outer(validate::ValidationMode::kCheap);
  {
    validate::ValidatorScope scope(&outer);
    EXPECT_EQ(validate::ActiveValidator(), &outer);
    // Cheap mode is invisible to deep-only check sites.
    EXPECT_EQ(validate::DeepValidator(), nullptr);
    validate::TrialValidator inner(validate::ValidationMode::kDeep);
    {
      validate::ValidatorScope nested(&inner);
      EXPECT_EQ(validate::ActiveValidator(), &inner);
      EXPECT_EQ(validate::DeepValidator(), &inner);
    }
    EXPECT_EQ(validate::ActiveValidator(), &outer);
  }
  EXPECT_EQ(validate::ActiveValidator(), nullptr);
}

TEST(PmfInvariants, SeededMassLossIsCaught) {
  // A pmf that silently lost mass (sums to 0.9) — constructible only through
  // the unchecked deserialization seam, exactly how a buggy pmf operation
  // would corrupt state.
  const pmf::Pmf broken = pmf::Pmf::FromRawUnchecked(
      {{1.0, 0.5}, {2.0, 0.4}});
  validate::TrialValidator validator(validate::ValidationMode::kDeep);
  {
    validate::ValidatorScope scope(&validator);
    pmf::ValidatePmfInvariants(broken, "convolve");
  }
  const validate::ValidationReport& report = validator.report();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.by_check.empty());
  EXPECT_EQ(report.by_check[0].check, "pmf-mass");
  EXPECT_NE(report.by_check[0].detail.find("convolve"), std::string::npos);
}

TEST(PmfInvariants, SeededMassLossThrowsWhenFailFast) {
  const pmf::Pmf broken = pmf::Pmf::FromRawUnchecked(
      {{1.0, 0.5}, {2.0, 0.4}});
  validate::TrialValidator validator(validate::ValidationMode::kDeep,
                                     /*fail_fast=*/true);
  validate::ValidatorScope scope(&validator);
  EXPECT_THROW(pmf::ValidatePmfInvariants(broken, "convolve"),
               validate::ValidationError);
}

TEST(PmfInvariants, UnsortedSupportIsCaught) {
  const pmf::Pmf broken = pmf::Pmf::FromRawUnchecked(
      {{2.0, 0.5}, {1.0, 0.5}});
  validate::TrialValidator validator(validate::ValidationMode::kDeep);
  {
    validate::ValidatorScope scope(&validator);
    pmf::ValidatePmfInvariants(broken, "compact");
  }
  ASSERT_FALSE(validator.report().by_check.empty());
  EXPECT_EQ(validator.report().by_check[0].check, "pmf-support");
}

TEST(PmfInvariants, HealthyPmfPasses) {
  const pmf::Pmf healthy = pmf::Pmf::FromImpulses({{1.0, 0.25}, {2.0, 0.75}});
  validate::TrialValidator validator(validate::ValidationMode::kDeep);
  {
    validate::ValidatorScope scope(&validator);
    pmf::ValidatePmfInvariants(healthy, "from-impulses");
  }
  EXPECT_TRUE(validator.report().ok());
  EXPECT_GT(validator.report().checks_run, 0u);
}

TEST(PmfInvariants, DeepHookAuditsEveryPmfOperation) {
  // With a deep validator active, Convolve/Truncate/Compact audit their
  // results automatically — a healthy pipeline runs checks and stays clean.
  validate::TrialValidator validator(validate::ValidationMode::kDeep);
  {
    validate::ValidatorScope scope(&validator);
    const pmf::Pmf a = pmf::Pmf::FromImpulses({{1.0, 0.5}, {2.0, 0.5}});
    const pmf::Pmf b = pmf::Pmf::FromImpulses({{3.0, 0.25}, {4.0, 0.75}});
    const pmf::Pmf c = pmf::Convolve(a, b);
    (void)c.TruncateBelow(4.5);
  }
  EXPECT_TRUE(validator.report().ok());
  EXPECT_GT(validator.report().checks_run, 0u);
}

TEST(ValidatedTrial, DeepModeIsCleanOnThePaperConfig) {
  // The acceptance bar for the validation layer: a deep-validated run of the
  // paper configuration reports thousands of executed checks and zero
  // violations — and, with validation off, zero checks (the hooks are
  // null-checks only).
  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  sim::RunOptions options = experiment::PaperRunOptions();
  options.num_trials = 2;
  options.validation = validate::ValidationMode::kDeep;
  options.validation_fail_fast = true;  // any violation aborts the test

  const std::vector<sim::TrialResult> trials =
      sim::RunTrials(setup, "SQ", "en+rob", options);
  for (const sim::TrialResult& trial : trials) {
    EXPECT_TRUE(trial.validation.ok());
    EXPECT_EQ(trial.validation.mode, validate::ValidationMode::kDeep);
    EXPECT_GT(trial.validation.checks_run, 1000u);
  }

  options.validation = validate::ValidationMode::kOff;
  options.validation_fail_fast = false;
  const std::vector<sim::TrialResult> off =
      sim::RunTrials(setup, "SQ", "en+rob", options);
  EXPECT_EQ(off[0].validation.checks_run, 0u);

  // Validation must not perturb the simulation: identical outcomes.
  ASSERT_EQ(trials.size(), off.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].missed_deadlines, off[i].missed_deadlines);
    EXPECT_EQ(trials[i].total_energy, off[i].total_energy);
    EXPECT_EQ(trials[i].makespan, off[i].makespan);
  }
}

}  // namespace
}  // namespace ecdra
