// The declarative ScenarioSpec: canonical serialization round-trips
// byte-stably, parse diagnostics name the offending line, the fingerprint
// covers exactly the result-shaping subset (grid/harness knobs excluded),
// and the checkpoint ConfigFingerprint is the same hash — one recipe, one
// fingerprint, every consumer.
#include "policy/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "experiment/paper_config.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment_runner.hpp"

namespace ecdra {
namespace {

/// A spec with every field moved off its default, so a round-trip that
/// silently drops a key would be caught.
policy::ScenarioSpec FullyCustomSpec() {
  policy::ScenarioSpec spec;
  spec.master_seed = 77;
  spec.environment.cluster.num_nodes = 5;
  spec.environment.cluster.min_processors = 2;
  spec.environment.cluster.max_processors = 3;
  spec.environment.cluster.min_power_efficiency = 0.85;
  spec.environment.cvb.num_task_types = 25;
  spec.environment.cvb.task_mean = 500.0;
  spec.environment.cvb.task_cov = 0.3;
  spec.environment.cvb.machine_cov = 0.2;
  spec.environment.discretize.num_impulses = 16;
  spec.environment.discretize.tail_clip = 1e-5;
  spec.environment.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(30, 60, 1.0 / 7.0, 1.0 / 31.0);
  spec.environment.workload.load_factor_scale = 1.25;
  spec.environment.workload.priority_classes = {{1.0, 0.7}, {4.0, 0.3}};
  spec.environment.budget_task_count = 800.0;
  spec.environment.exec_cov = 0.4;
  spec.idle_policy = policy::IdlePolicy::kPowerGated;
  spec.cancel_policy = policy::CancelPolicy::kCancelHopelessQueued;
  spec.pstate_transition_latency = 0.25;
  spec.power_cov = 0.1;
  spec.filter_options.energy.low_multiplier = 1.1;
  spec.filter_options.energy.scale_fair_share_by_priority = true;
  spec.filter_options.robustness_threshold = 0.65;
  spec.fault.mtbf = 5000.0;
  spec.fault.lifetime = fault::LifetimeDistribution::kWeibull;
  spec.fault.weibull_shape = 1.7;
  spec.fault.repair_time = 120.0;
  spec.fault.throttle_interval = 300.0;
  spec.fault.throttle_duration = 30.0;
  spec.fault.throttle_floor = 2;
  spec.fault.horizon = 9999.0;
  spec.fault.domain_mtbf = 20000.0;
  spec.fault.domain_repair_time = 600.0;
  spec.fault.cascade_throttle = true;
  spec.fault_domains = "rackA:0-2,rackB:3-4";
  spec.recovery = fault::RecoveryPolicy::kMigrateQueued;
  spec.governor = "budget-feedback";
  spec.econ_enabled = true;
  spec.econ.type_values = {1.0, 4.0, 0.5};
  spec.econ.tiers = {econ::SlaTier{"gold", 3.0, 2.0, 0.8, 0.2},
                     econ::SlaTier{"best-effort", 1.0, 1.0, 0.0, 0.8}};
  spec.econ.energy_price = 2.5e-6;
  spec.econ.value_decay = 150.0;
  spec.grid.heuristics = {"LL", "MECT"};
  spec.grid.filter_variants = {"en", "en+rob"};
  spec.grid.batch_heuristics = {"MinMinCT"};
  spec.num_trials = 7;
  spec.validation = validate::ValidationMode::kCheap;
  return spec;
}

TEST(ScenarioSpec, SerializeParseSerializeIsByteStable) {
  for (const policy::ScenarioSpec& spec :
       {policy::ScenarioSpec{}, experiment::PaperScenario(),
        FullyCustomSpec()}) {
    const std::string text = policy::CanonicalSpecText(spec);
    const policy::ScenarioSpec parsed = policy::ParseScenarioSpec(text);
    EXPECT_EQ(policy::CanonicalSpecText(parsed), text);
    // The fingerprint survives the round-trip too (it reads the same
    // fields), so a parsed spec resumes the original's checkpoints.
    EXPECT_EQ(policy::SpecFingerprint(parsed), policy::SpecFingerprint(spec));
  }
}

TEST(ScenarioSpec, ParseToleratesCommentsWhitespaceAndDefaults) {
  const policy::ScenarioSpec parsed = policy::ParseScenarioSpec(
      "# a comment\n"
      "ecdra-scenario v1\n"
      "\n"
      "  seed =  42  \n"
      "# another comment\n"
      "run.filter.rho_thresh = 0.75\n");
  EXPECT_EQ(parsed.master_seed, 42u);
  EXPECT_EQ(parsed.filter_options.robustness_threshold, 0.75);
  // Unset keys keep their defaults.
  EXPECT_EQ(parsed.num_trials, 50u);
  EXPECT_EQ(parsed.environment.cvb.task_mean,
            policy::ScenarioSpec{}.environment.cvb.task_mean);
}

TEST(ScenarioSpec, ParseDiagnosticsNameTheOffendingLine) {
  try {
    (void)policy::ParseScenarioSpec("not-a-header\nseed = 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("not-a-header"),
              std::string::npos)
        << error.what();
  }

  try {
    (void)policy::ParseScenarioSpec("ecdra-scenario v1\nno.such.key = 3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no.such.key"), std::string::npos)
        << error.what();
  }

  try {
    (void)policy::ParseScenarioSpec("ecdra-scenario v1\nseed = banana\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("seed = banana"),
              std::string::npos)
        << error.what();
  }

  EXPECT_THROW((void)policy::ParseScenarioSpec(""), std::invalid_argument);
}

TEST(ScenarioSpec, MalformedTierTokensNameTheExpectedShape) {
  try {
    (void)policy::ParseScenarioSpec(
        "ecdra-scenario v1\nenv.econ.tiers = gold@3@2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what())
                  .find("name@vmult@smult@rhofloor@prob"),
              std::string::npos)
        << error.what();
  }
}

TEST(ScenarioSpec, FingerprintCoversResultShapingKnobsOnly) {
  const policy::ScenarioSpec base;
  const std::string fingerprint = policy::SpecFingerprint(base);
  EXPECT_EQ(fingerprint.size(), 16u);
  EXPECT_EQ(fingerprint, policy::SpecFingerprint(base));  // deterministic

  // Result-shaping fields change the hash...
  policy::ScenarioSpec changed = base;
  changed.master_seed = 999;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.filter_options.robustness_threshold = 0.9;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.environment.budget_task_count = 1.0;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.fault.mtbf = 100.0;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.fault.domain_mtbf = 100.0;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.fault_domains = "all:0-15";
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.governor = "race-to-idle";
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  // The v5 job block shapes results too: gangs change placement and
  // per-job accounting, so every knob must perturb the hash.
  changed = base;
  changed.environment.workload.jobs.enabled = true;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.environment.workload.jobs.widths = {{4, 1.0}};
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.environment.workload.jobs.depths = {{2, 1.0}};
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.environment.workload.jobs.deadline_scale = 1.5;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.jobs_placement = "spread";
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  // The v6 econ block: values, tiers, the enable flag, the energy price,
  // and the decay window all shape results (policies read them), so every
  // one must perturb the hash.
  changed = base;
  changed.econ_enabled = true;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.econ.type_values = {1.0, 5.0};
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.econ.tiers = {econ::SlaTier{"gold", 3.0, 2.0, 0.8, 1.0}};
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.econ.energy_price = 1e-6;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));
  changed = base;
  changed.econ.value_decay = 200.0;
  EXPECT_NE(fingerprint, policy::SpecFingerprint(changed));

  // ...grid and harness knobs do not (so a resume with more trials or a
  // different sweep grid accepts the same checkpoints).
  policy::ScenarioSpec harness = base;
  harness.num_trials = 9999;
  harness.grid.heuristics = {"OnlyThis"};
  harness.grid.filter_variants = {"none"};
  harness.grid.batch_heuristics = {"MinMinCT"};
  harness.validation = validate::ValidationMode::kDeep;
  EXPECT_EQ(fingerprint, policy::SpecFingerprint(harness));

  // The full serialization does cover them (they are part of the artifact,
  // just not of the fingerprint).
  EXPECT_NE(policy::CanonicalSpecText(harness),
            policy::CanonicalSpecText(base));
}

TEST(ScenarioSpec, CheckpointConfigFingerprintIsTheSpecFingerprint) {
  policy::ScenarioSpec spec = experiment::PaperScenario();
  // Shrink so BuildExperimentSetup stays fast.
  spec.environment.cluster.num_nodes = 3;
  spec.environment.cvb.num_task_types = 10;
  spec.environment.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(10, 20, 1.0 / 8.0, 1.0 / 48.0);
  spec.filter_options.robustness_threshold = 0.6;
  spec.idle_policy = policy::IdlePolicy::kStayAtLast;

  const sim::ExperimentSetup setup = sim::BuildExperimentSetup(spec);
  const sim::RunOptions options = sim::RunOptionsFromSpec(spec);
  EXPECT_EQ(sim::ConfigFingerprint(setup, options),
            policy::SpecFingerprint(spec));
}

TEST(ScenarioSpec, BuildExperimentSetupRecordsItsRecipe) {
  policy::ScenarioSpec spec;
  spec.master_seed = 5;
  spec.environment.cluster.num_nodes = 3;
  spec.environment.cvb.num_task_types = 10;
  spec.environment.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(10, 20, 1.0 / 8.0, 1.0 / 48.0);
  spec.environment.exec_cov = 0.33;

  const sim::ExperimentSetup setup = sim::BuildExperimentSetup(spec);
  EXPECT_EQ(setup.master_seed, 5u);
  EXPECT_EQ(setup.environment.cluster.num_nodes, 3u);
  EXPECT_EQ(setup.environment.exec_cov, 0.33);
  // The recorded recipe reproduces the identical environment.
  const sim::ExperimentSetup again =
      sim::BuildExperimentSetup(setup.master_seed, setup.environment);
  EXPECT_EQ(again.t_avg, setup.t_avg);
  EXPECT_EQ(again.p_avg, setup.p_avg);
  EXPECT_EQ(again.energy_budget, setup.energy_budget);
}

TEST(ScenarioSpec, RunOptionsFromSpecCopiesEveryRunKnob) {
  const policy::ScenarioSpec spec = FullyCustomSpec();
  const sim::RunOptions options = sim::RunOptionsFromSpec(spec);
  EXPECT_EQ(options.num_trials, spec.num_trials);
  EXPECT_EQ(options.idle_policy, spec.idle_policy);
  EXPECT_EQ(options.cancel_policy, spec.cancel_policy);
  EXPECT_EQ(options.pstate_transition_latency,
            spec.pstate_transition_latency);
  EXPECT_EQ(options.power_cov, spec.power_cov);
  EXPECT_EQ(options.filter_options.robustness_threshold,
            spec.filter_options.robustness_threshold);
  EXPECT_EQ(options.filter_options.energy.low_multiplier,
            spec.filter_options.energy.low_multiplier);
  EXPECT_EQ(options.fault.mtbf, spec.fault.mtbf);
  EXPECT_EQ(options.fault.domain_mtbf, spec.fault.domain_mtbf);
  EXPECT_EQ(options.fault.domain_repair_time, spec.fault.domain_repair_time);
  EXPECT_EQ(options.fault.cascade_throttle, spec.fault.cascade_throttle);
  EXPECT_EQ(options.fault_domains, spec.fault_domains);
  EXPECT_EQ(options.recovery, spec.recovery);
  EXPECT_EQ(options.governor, spec.governor);
  EXPECT_EQ(options.validation, spec.validation);
  EXPECT_EQ(options.econ_enabled, spec.econ_enabled);
  EXPECT_EQ(options.econ, spec.econ);
}

TEST(Fnv1a64, MatchesKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(policy::Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(policy::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(policy::Fnv1a64Hex(""), "cbf29ce484222325");
}

}  // namespace
}  // namespace ecdra
