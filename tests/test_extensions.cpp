// Tests for the §VIII future-work extensions: P-state transition latency,
// stochastic power consumption, and task priorities.
#include <cmath>

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_runner.hpp"
#include "test_support.hpp"
#include "workload/workload_generator.hpp"

namespace ecdra {
namespace {

workload::TaskTypeTable DeltaTable(const cluster::Cluster& cluster,
                                   double base) {
  std::vector<pmf::Pmf> pmfs;
  for (std::size_t node = 0; node < cluster.num_nodes(); ++node) {
    for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
      pmfs.push_back(pmf::Pmf::Delta(
          base * cluster.node(node).pstates[s].time_multiplier));
    }
  }
  return workload::TaskTypeTable(1, cluster.num_nodes(), std::move(pmfs));
}

inline constexpr double kSimpleNodeP4Power = 100.0 / 2.25 * 0.4096;

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest()
      : cluster_(test::SingleCoreCluster()),
        table_(DeltaTable(cluster_, 10.0)) {}

  [[nodiscard]] sim::TrialResult Run(std::vector<workload::Task> tasks,
                                     sim::TrialOptions options,
                                     std::uint64_t seed = 7) {
    core::ImmediateModeScheduler scheduler(
        cluster_, table_, core::MakeHeuristic("SQ", util::RngStream(1)), {},
        1e9, tasks.size());
    sim::Engine engine(cluster_, table_, std::move(tasks), scheduler, options,
                       util::RngStream(seed));
    return engine.Run();
  }

  cluster::Cluster cluster_;
  workload::TaskTypeTable table_;
};

// --------------------------- transition latency ---------------------------

TEST_F(ExtensionTest, TransitionLatencyDelaysTheFirstStart) {
  sim::TrialOptions options;
  options.energy_budget = 1e9;
  options.pstate_transition_latency = 2.0;
  options.collect_task_records = true;
  // Core idles at P4; SQ picks P0, so the switch costs 2 s.
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}}, options);
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 3.0);
  EXPECT_DOUBLE_EQ(result.makespan, 13.0);
}

TEST_F(ExtensionTest, NoLatencyWhenStateIsUnchanged) {
  sim::TrialOptions options;
  options.energy_budget = 1e9;
  options.pstate_transition_latency = 2.0;
  options.idle_policy = sim::IdlePolicy::kStayAtLast;
  options.collect_task_records = true;
  // Back-to-back tasks at the same P-state: only the first pays the switch.
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 100.0}},
          options);
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 2.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].start_time, 12.0);  // no extra 2 s
}

TEST_F(ExtensionTest, LatencyCanTurnAnOnTimeTaskLate) {
  sim::TrialOptions on_time;
  on_time.energy_budget = 1e9;
  sim::TrialOptions delayed = on_time;
  delayed.pstate_transition_latency = 5.0;
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 12.0}};
  EXPECT_EQ(Run(tasks, on_time).completed, 1u);
  const sim::TrialResult late = Run(tasks, delayed);
  EXPECT_EQ(late.completed, 0u);
  EXPECT_EQ(late.finished_late, 1u);
}

// ------------------------------ power gating ------------------------------

TEST_F(ExtensionTest, PowerGatedIdleDrawsNothing) {
  sim::TrialOptions options;
  options.energy_budget = 1e9;
  options.idle_policy = sim::IdlePolicy::kPowerGated;
  // Gated [0,1), busy [1,11) at P0 (100 W), gated afterwards: exactly the
  // busy energy.
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}}, options);
  EXPECT_NEAR(result.total_energy, 10.0 * 100.0, 1e-9);
}

TEST_F(ExtensionTest, PowerGatingDelaysBudgetExhaustion) {
  sim::TrialOptions deepest;
  deepest.energy_budget = 1e9;
  sim::TrialOptions gated = deepest;
  gated.idle_policy = sim::IdlePolicy::kPowerGated;
  // Two tasks with a long idle gap between them.
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 1e6},
                                          workload::Task{1, 0, 500.0, 1e6}};
  const sim::TrialResult a = Run(tasks, deepest);
  const sim::TrialResult b = Run(tasks, gated);
  // The 490-unit idle gap at P4 (~18.2 W) vs gated (0 W).
  EXPECT_NEAR(a.total_energy - b.total_energy,
              490.0 * kSimpleNodeP4Power, 1e-6);
}

// ---------------------------- stochastic power ----------------------------

TEST_F(ExtensionTest, StochasticPowerPerturbsEnergyAroundTheMean) {
  sim::TrialOptions deterministic;
  deterministic.energy_budget = 1e9;
  const double base_energy =
      Run({workload::Task{0, 0, 0.0, 100.0}}, deterministic).total_energy;

  sim::TrialOptions noisy = deterministic;
  noisy.power_cov = 0.3;
  double sum = 0.0;
  int differs = 0;
  const int reps = 40;
  for (int seed = 0; seed < reps; ++seed) {
    const double energy =
        Run({workload::Task{0, 0, 0.0, 100.0}}, noisy,
            static_cast<std::uint64_t>(seed))
            .total_energy;
    sum += energy;
    if (std::fabs(energy - base_energy) > 1e-6) ++differs;
  }
  EXPECT_GT(differs, reps / 2);  // the draw actually varies
  // The sampled power is unbiased: the mean trial energy approaches the
  // deterministic one (tolerance ~ cov/sqrt(reps) of the busy share).
  EXPECT_NEAR(sum / reps, base_energy, 0.1 * base_energy);
}

TEST_F(ExtensionTest, StochasticPowerKeepsMeterAndLogsConsistent) {
  // The engine cross-checks the online meter against the Eq. 1/2 post-hoc
  // computation internally; a completed run means they agreed.
  sim::TrialOptions noisy;
  noisy.energy_budget = 1e9;
  noisy.power_cov = 0.5;
  std::vector<workload::Task> tasks;
  for (std::size_t i = 0; i < 10; ++i) {
    tasks.push_back(workload::Task{i, 0, static_cast<double>(i), 1e6});
  }
  EXPECT_NO_THROW((void)Run(std::move(tasks), noisy));
}

TEST_F(ExtensionTest, StochasticPowerIsDeterministicPerSeed) {
  sim::TrialOptions noisy;
  noisy.energy_budget = 1e9;
  noisy.power_cov = 0.2;
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 1e6}};
  EXPECT_DOUBLE_EQ(Run(tasks, noisy, 3).total_energy,
                   Run(tasks, noisy, 3).total_energy);
}

// ------------------------------- priorities -------------------------------

TEST_F(ExtensionTest, WeightedTalliesFollowPriorities) {
  sim::TrialOptions options;
  options.energy_budget = 1e9;
  // Task 0 (weight 5) completes; task 1 (weight 2) misses its deadline.
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 0.0, 100.0, 5.0},
           workload::Task{1, 0, 1.0, 15.0, 2.0}},
          options);
  EXPECT_EQ(result.completed, 1u);
  EXPECT_DOUBLE_EQ(result.weighted_total, 7.0);
  EXPECT_DOUBLE_EQ(result.weighted_completed, 5.0);
  EXPECT_DOUBLE_EQ(result.weighted_missed, 2.0);
}

TEST(PriorityWorkload, ClassesAreSampledWithTheRightMix) {
  const cluster::Cluster cluster({test::SimpleNode()});
  const workload::EtcMatrix etc(1, 1, {100.0});
  const workload::TaskTypeTable table(cluster, etc, 0.25);
  workload::WorkloadGeneratorOptions options;
  options.arrivals = workload::ArrivalSpec::ConstantRate(2000, 1.0);
  options.priority_classes = {workload::PriorityClass{4.0, 0.25},
                              workload::PriorityClass{1.0, 0.75}};
  util::RngStream rng(5);
  const std::vector<workload::Task> tasks =
      workload::GenerateWorkload(table, options, rng);
  std::size_t high = 0;
  for (const workload::Task& task : tasks) {
    ASSERT_TRUE(task.priority == 4.0 || task.priority == 1.0);
    if (task.priority == 4.0) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / 2000.0, 0.25, 0.04);
}

TEST(PriorityWorkload, SinglePriorityClassReproducesPaperWeights) {
  const cluster::Cluster cluster({test::SimpleNode()});
  const workload::EtcMatrix etc(1, 1, {100.0});
  const workload::TaskTypeTable table(cluster, etc, 0.25);
  workload::WorkloadGeneratorOptions options;
  options.arrivals = workload::ArrivalSpec::ConstantRate(50, 1.0);
  util::RngStream rng(5);
  for (const workload::Task& task :
       workload::GenerateWorkload(table, options, rng)) {
    EXPECT_DOUBLE_EQ(task.priority, 1.0);
  }
}

TEST(PriorityWorkload, RejectsInvalidClasses) {
  const cluster::Cluster cluster({test::SimpleNode()});
  const workload::EtcMatrix etc(1, 1, {100.0});
  const workload::TaskTypeTable table(cluster, etc, 0.25);
  workload::WorkloadGeneratorOptions options;
  options.arrivals = workload::ArrivalSpec::ConstantRate(5, 1.0);
  options.priority_classes = {};
  util::RngStream rng(1);
  EXPECT_THROW((void)workload::GenerateWorkload(table, options, rng),
               std::invalid_argument);
  options.priority_classes = {workload::PriorityClass{0.0, 1.0}};
  EXPECT_THROW((void)workload::GenerateWorkload(table, options, rng),
               std::invalid_argument);
}

TEST(PriorityFairShare, ScalingAdmitsCostlierAssignmentsForImportantTasks) {
  const cluster::Cluster cluster({test::SimpleNode()});
  const workload::EtcMatrix etc(1, 1, {100.0});
  const workload::TaskTypeTable table(cluster, etc, 0.25);
  std::vector<robustness::CoreQueueModel> cores(1);

  // Fair share (unscaled) sits below the cheapest candidate's EEC; a
  // priority-4 task with scaling enabled clears the bar.
  const workload::Task low{0, 0, 0.0, 1e9, 1.0};
  const workload::Task high{1, 0, 0.0, 1e9, 4.0};
  core::EnergyFilterOptions scaled;
  scaled.scale_fair_share_by_priority = true;
  core::EnergyFilter filter(scaled);

  core::MappingContext low_ctx(cluster, table, cores, low, 0.0);
  low_ctx.SetBudgetView(3000.0, 1);  // fair share 0.8 * 3000 = 2400
  filter.Apply(low_ctx);
  EXPECT_TRUE(low_ctx.candidates().empty());  // cheapest EEC ~ 4400

  core::MappingContext high_ctx(cluster, table, cores, high, 0.0);
  high_ctx.SetBudgetView(3000.0, 1);  // scaled fair share 9600
  filter.Apply(high_ctx);
  EXPECT_FALSE(high_ctx.candidates().empty());
}

TEST_F(ExtensionTest, RobustnessTraceSamplesEveryArrival) {
  sim::TrialOptions options;
  options.energy_budget = 1e9;
  options.collect_robustness_trace = true;
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}, workload::Task{1, 0, 2.0, 100.0}},
          options);
  ASSERT_EQ(result.robustness_trace.size(), 2u);
  EXPECT_DOUBLE_EQ(result.robustness_trace[0].time, 1.0);
  // Sampled just after mapping: one delta-pmf task in flight, surely on
  // time -> rho = 1; after the second arrival both are certain.
  EXPECT_DOUBLE_EQ(result.robustness_trace[0].rho, 1.0);
  EXPECT_EQ(result.robustness_trace[0].in_flight, 1u);
  EXPECT_DOUBLE_EQ(result.robustness_trace[1].rho, 2.0);
  EXPECT_EQ(result.robustness_trace[1].in_flight, 2u);
}

TEST_F(ExtensionTest, RobustnessTraceOffByDefault) {
  sim::TrialOptions options;
  options.energy_budget = 1e9;
  const sim::TrialResult result =
      Run({workload::Task{0, 0, 1.0, 100.0}}, options);
  EXPECT_TRUE(result.robustness_trace.empty());
}

TEST(RunOptionsPlumbing, LatencyAndPowerCovReachTheEngine) {
  sim::SetupOptions small;
  small.cluster.num_nodes = 2;
  small.cvb.num_task_types = 5;
  small.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(10, 20, 1.0 / 8.0, 1.0 / 48.0);
  const sim::ExperimentSetup setup = sim::BuildExperimentSetup(3, small);

  sim::RunOptions plain;
  sim::RunOptions modified;
  modified.pstate_transition_latency = 50.0;
  modified.power_cov = 0.3;
  const sim::TrialResult a = sim::RunSingleTrial(setup, "MECT", "none", 0, plain);
  const sim::TrialResult b =
      sim::RunSingleTrial(setup, "MECT", "none", 0, modified);
  EXPECT_NE(a.total_energy, b.total_energy);
  EXPECT_NE(a.makespan, b.makespan);
}

}  // namespace
}  // namespace ecdra
