// Shared fixtures and builders for the test suite: tiny deterministic
// clusters and pmfs with hand-computable behaviour.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/power_model.hpp"
#include "pmf/pmf.hpp"

namespace ecdra::test {

/// A node with known round-number P-states: frequencies 1.0, 0.8, 0.64,
/// 0.512, 0.4096 (time multipliers 1, 1.25, 1.5625, ...), P0 power 100 W,
/// voltages 1.5 / 1.0.
inline cluster::Node SimpleNode(std::size_t processors = 1,
                                std::size_t cores_per_processor = 1,
                                double efficiency = 1.0) {
  cluster::PowerModelInputs inputs;
  inputs.p0_power_watts = 100.0;
  inputs.high_voltage = 1.5;
  inputs.low_voltage = 1.0;
  inputs.frequency_ratios = {1.0, 0.8, 0.64, 0.512, 0.4096};
  cluster::Node node;
  node.num_processors = processors;
  node.cores_per_processor = cores_per_processor;
  node.power_efficiency = efficiency;
  node.pstates = cluster::BuildPStateProfile(inputs);
  return node;
}

/// Single-node single-core cluster.
inline cluster::Cluster SingleCoreCluster(double efficiency = 1.0) {
  return cluster::Cluster({SimpleNode(1, 1, efficiency)});
}

/// A small two-impulse pmf {(lo, 0.5), (hi, 0.5)}.
inline pmf::Pmf TwoPoint(double lo, double hi) {
  return pmf::Pmf::FromImpulses({{lo, 0.5}, {hi, 0.5}});
}

}  // namespace ecdra::test
