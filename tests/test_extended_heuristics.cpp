// Tests for the extended [MaA99] immediate-mode baselines: OLB, MET, KPB.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/kpb.hpp"
#include "core/mapping_context.hpp"
#include "core/mect.hpp"
#include "core/met.hpp"
#include "core/olb.hpp"
#include "test_support.hpp"
#include "workload/task_type_table.hpp"

namespace ecdra::core {
namespace {

class ExtendedHeuristicTest : public ::testing::Test {
 protected:
  ExtendedHeuristicTest()
      : cluster_({test::SimpleNode(1, 1, 1.0), test::SimpleNode(2, 1, 0.5)}),
        etc_(1, 2, {100.0, 150.0}),
        table_(cluster_, etc_, 0.25),
        cores_(cluster_.total_cores()) {}

  [[nodiscard]] MappingContext Context(double now = 0.0) {
    return MappingContext(cluster_, table_, cores_, task_, now);
  }

  void MakeBusy(std::size_t flat_core, double exec_duration, double start) {
    exec_holder_.push_back(pmf::Pmf::Delta(exec_duration));
    cores_[flat_core].StartTask(
        robustness::ModeledTask{999, &exec_holder_.back(), 1e9}, start);
  }

  cluster::Cluster cluster_;
  workload::EtcMatrix etc_;
  workload::TaskTypeTable table_;
  std::vector<robustness::CoreQueueModel> cores_;
  workload::Task task_{0, 0, 0.0, 1e9};
  std::deque<pmf::Pmf> exec_holder_;
};

TEST_F(ExtendedHeuristicTest, MetIgnoresQueuesEntirely) {
  // The globally fastest assignment is node 0 at P0 (EET 100) even when its
  // core is deeply backed up.
  MakeBusy(0, 10000.0, 0.0);
  MetHeuristic met;
  MappingContext ctx = Context();
  const auto chosen = met.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->assignment.flat_core, 0u);
  EXPECT_EQ(chosen->assignment.pstate, 0u);
}

TEST_F(ExtendedHeuristicTest, OlbPicksSoonestReadyCore) {
  MakeBusy(0, 10.0, 0.0);
  MakeBusy(1, 100.0, 0.0);
  MakeBusy(2, 50.0, 0.0);
  OlbHeuristic olb;
  MappingContext ctx = Context();
  const auto chosen = olb.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->assignment.flat_core, 0u);  // ready at 10
}

TEST_F(ExtendedHeuristicTest, OlbBreaksReadyTiesTowardLowPower) {
  // All cores idle (ready now): OLB prefers the lowest-power P-state.
  OlbHeuristic olb;
  MappingContext ctx = Context();
  const auto chosen = olb.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->assignment.pstate, cluster::kNumPStates - 1);
}

TEST_F(ExtendedHeuristicTest, KpbWithFullPercentEqualsMect) {
  MakeBusy(0, 200.0, 0.0);
  KpbHeuristic kpb(100.0);
  MectHeuristic mect;
  MappingContext ctx1 = Context();
  MappingContext ctx2 = Context();
  const auto a = kpb.Select(ctx1);
  const auto b = mect.Select(ctx2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST_F(ExtendedHeuristicTest, KpbWithTinyPercentEqualsMet) {
  MakeBusy(0, 200.0, 0.0);
  KpbHeuristic kpb(1.0);  // keeps only the single fastest assignment
  MetHeuristic met;
  MappingContext ctx1 = Context();
  MappingContext ctx2 = Context();
  const auto a = kpb.Select(ctx1);
  const auto b = met.Select(ctx2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST_F(ExtendedHeuristicTest, KpbAvoidsPileUpThatTrapsMet) {
  // Node 0 (fastest for this type) is backed up: MET still piles on it,
  // KPB at 40% (6 of 15 candidates: node 0 P0/P1/P2 and node 1 P0 are the
  // EET leaders) escapes to an idle node-1 core.
  MakeBusy(0, 10000.0, 0.0);
  KpbHeuristic kpb(40.0);
  MappingContext ctx = Context();
  const auto chosen = kpb.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_NE(chosen->assignment.flat_core, 0u);
}

TEST_F(ExtendedHeuristicTest, KpbRejectsInvalidPercent) {
  EXPECT_THROW((void)KpbHeuristic(0.0), std::invalid_argument);
  EXPECT_THROW((void)KpbHeuristic(101.0), std::invalid_argument);
}

TEST_F(ExtendedHeuristicTest, FactoryKnowsExtendedNames) {
  for (const std::string& name : ExtendedHeuristicNames()) {
    auto heuristic = MakeHeuristic(name, util::RngStream(1));
    EXPECT_EQ(heuristic->name(), name);
    MappingContext ctx = Context();
    EXPECT_TRUE(heuristic->Select(ctx).has_value()) << name;
  }
  EXPECT_EQ(ExtendedHeuristicNames().size(), 7u);
}

TEST_F(ExtendedHeuristicTest, AllExtendedHandleEmptyCandidates) {
  for (const std::string& name : ExtendedHeuristicNames()) {
    auto heuristic = MakeHeuristic(name, util::RngStream(1));
    MappingContext ctx = Context();
    ctx.candidates().clear();
    EXPECT_EQ(heuristic->Select(ctx), std::nullopt) << name;
  }
}

}  // namespace
}  // namespace ecdra::core
