// End-to-end integration tests over a reduced §VI environment: every
// heuristic x filter variant runs a full trial; cross-module invariants
// (counting identities, energy reconciliation, robustness prediction
// quality, figure harness plumbing) are asserted on the outcome.
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "experiment/figure_harness.hpp"
#include "experiment/paper_config.hpp"
#include "sim/experiment_runner.hpp"

namespace ecdra {
namespace {

sim::SetupOptions ReducedPaperOptions() {
  sim::SetupOptions options = experiment::PaperSetupOptions();
  options.cvb.num_task_types = 20;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(40, 120, 1.0 / 8.0, 1.0 / 48.0);
  options.budget_task_count = 200.0;
  return options;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setup_ = new sim::ExperimentSetup(
        sim::BuildExperimentSetup(experiment::kPaperMasterSeed,
                                  ReducedPaperOptions()));
  }
  static void TearDownTestSuite() {
    delete setup_;
    setup_ = nullptr;
  }

  static sim::ExperimentSetup* setup_;
};

sim::ExperimentSetup* IntegrationTest::setup_ = nullptr;

class AllConfigs
    : public IntegrationTest,
      public ::testing::WithParamInterface<std::tuple<std::string, std::string>> {
};

TEST_P(AllConfigs, TrialSatisfiesCountingAndEnergyInvariants) {
  const auto [heuristic, variant] = GetParam();
  sim::RunOptions options;
  options.collect_task_records = true;
  const sim::TrialResult result =
      sim::RunSingleTrial(*setup_, heuristic, variant, 0, options);

  EXPECT_EQ(result.window_size, 200u);
  EXPECT_EQ(result.completed + result.missed_deadlines, result.window_size);
  EXPECT_EQ(result.missed_deadlines,
            result.discarded + result.finished_late +
                result.on_time_but_over_budget + result.cancelled);

  // Per-task records agree with the aggregate counters.
  std::size_t completed = 0;
  std::size_t discarded = 0;
  for (const sim::TaskRecord& record : result.task_records) {
    if (!record.assigned) {
      ++discarded;
      continue;
    }
    EXPECT_GE(record.start_time, record.arrival);
    EXPECT_GT(record.finish_time, record.start_time);
    EXPECT_EQ(record.on_time, record.finish_time <= record.deadline);
    if (record.on_time && record.within_energy) ++completed;
    EXPECT_GE(record.rho_at_assignment, 0.0);
    EXPECT_LE(record.rho_at_assignment, 1.0);
  }
  EXPECT_EQ(completed, result.completed);
  EXPECT_EQ(discarded, result.discarded);

  // Energy sanity: positive; if exhausted, the trial consumed at least the
  // budget; if not exhausted, it stayed within it.
  EXPECT_GT(result.total_energy, 0.0);
  if (result.energy_exhausted_at) {
    EXPECT_GE(result.total_energy, setup_->energy_budget * (1.0 - 1e-9));
    EXPECT_LE(*result.energy_exhausted_at, result.makespan);
  } else {
    EXPECT_LE(result.total_energy, setup_->energy_budget * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    HeuristicByVariant, AllConfigs,
    ::testing::Combine(::testing::Values("SQ", "MECT", "LL", "Random"),
                       ::testing::Values("none", "en", "rob", "en+rob")),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '+', 'P');
      return name;
    });

TEST_F(IntegrationTest, CommonRandomNumbersShareArrivalsAcrossHeuristics) {
  sim::RunOptions options;
  options.collect_task_records = true;
  const sim::TrialResult a =
      sim::RunSingleTrial(*setup_, "SQ", "none", 3, options);
  const sim::TrialResult b =
      sim::RunSingleTrial(*setup_, "MECT", "en+rob", 3, options);
  ASSERT_EQ(a.task_records.size(), b.task_records.size());
  for (std::size_t i = 0; i < a.task_records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task_records[i].arrival, b.task_records[i].arrival);
    EXPECT_DOUBLE_EQ(a.task_records[i].deadline, b.task_records[i].deadline);
    EXPECT_EQ(a.task_records[i].type, b.task_records[i].type);
  }
}

TEST_F(IntegrationTest, RobustnessPredictionIsInformative) {
  // Contribution (a) of the paper: rho at assignment should predict on-time
  // completion. Pool several trials; tasks assigned with rho >= 0.8 must
  // finish on time more often than tasks assigned with rho < 0.2.
  sim::RunOptions options;
  options.collect_task_records = true;
  std::size_t high_n = 0, high_on_time = 0, low_n = 0, low_on_time = 0;
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const sim::TrialResult result =
        sim::RunSingleTrial(*setup_, "Random", "none", trial, options);
    for (const sim::TaskRecord& record : result.task_records) {
      if (!record.assigned) continue;
      if (record.rho_at_assignment >= 0.8) {
        ++high_n;
        high_on_time += record.on_time ? 1 : 0;
      } else if (record.rho_at_assignment < 0.2) {
        ++low_n;
        low_on_time += record.on_time ? 1 : 0;
      }
    }
  }
  ASSERT_GT(high_n, 20u);
  ASSERT_GT(low_n, 20u);
  const double high_rate = static_cast<double>(high_on_time) / high_n;
  const double low_rate = static_cast<double>(low_on_time) / low_n;
  EXPECT_GT(high_rate, low_rate + 0.3);
}

TEST_F(IntegrationTest, EnergyFilteringReducesEnergyConsumption) {
  sim::RunOptions options;
  options.num_trials = 3;
  const auto unfiltered = sim::RunTrials(*setup_, "MECT", "none", options);
  const auto filtered = sim::RunTrials(*setup_, "MECT", "en", options);
  double unfiltered_energy = 0.0, filtered_energy = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    unfiltered_energy += unfiltered[i].total_energy;
    filtered_energy += filtered[i].total_energy;
  }
  EXPECT_LT(filtered_energy, unfiltered_energy);
}

TEST_F(IntegrationTest, FigureHarnessProducesOneSeriesPerSpec) {
  sim::RunOptions options;
  options.num_trials = 2;
  const experiment::FigureResult figure = experiment::RunFigure(
      *setup_, "Test figure", experiment::VariantsOfHeuristic("SQ"), options);
  ASSERT_EQ(figure.series.size(), 4u);
  EXPECT_EQ(figure.window_size, 200u);
  for (const experiment::SeriesResult& series : figure.series) {
    EXPECT_EQ(series.missed_deadlines.size(), 2u);
    EXPECT_EQ(series.box.n, 2u);
    EXPECT_GT(series.mean_energy_fraction, 0.0);
  }
  EXPECT_EQ(figure.series[0].spec.label, "SQ (none)");
  EXPECT_EQ(figure.series[3].spec.label, "SQ (en+rob)");

  std::ostringstream os;
  experiment::PrintFigure(os, figure);
  EXPECT_NE(os.str().find("Test figure"), std::string::npos);
  EXPECT_NE(os.str().find("SQ (en+rob)"), std::string::npos);
  EXPECT_NE(os.str().find("median"), std::string::npos);
}

TEST_F(IntegrationTest, BestVariantsCoversAllHeuristics) {
  const std::vector<experiment::SeriesSpec> specs = experiment::BestVariants();
  ASSERT_EQ(specs.size(), 4u);
  for (const experiment::SeriesSpec& spec : specs) {
    EXPECT_EQ(spec.filter_variant, "en+rob");
  }
}

TEST_F(IntegrationTest, StayAtLastIdlePolicyBurnsMoreEnergy) {
  sim::RunOptions deepest;
  deepest.num_trials = 2;
  sim::RunOptions stay = deepest;
  stay.idle_policy = sim::IdlePolicy::kStayAtLast;
  const auto a = sim::RunTrials(*setup_, "MECT", "none", deepest);
  const auto b = sim::RunTrials(*setup_, "MECT", "none", stay);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LT(a[i].total_energy, b[i].total_energy);
  }
}

}  // namespace
}  // namespace ecdra
