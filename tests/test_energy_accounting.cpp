#include "cluster/energy_accounting.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/rng.hpp"

namespace ecdra::cluster {
namespace {

PStateProfile Profile() { return test::SimpleNode().pstates; }

TEST(CoreEnergy, SingleIntervalIsPowerTimesTime) {
  const TransitionLog log{{0.0, 0}, {10.0, 0}};
  EXPECT_DOUBLE_EQ(CoreEnergy(log, Profile()), 100.0 * 10.0);
}

TEST(CoreEnergy, SumsIntervalsAcrossTransitions) {
  const PStateProfile profile = Profile();
  // 5 s in P0, 10 s in P4, end.
  const TransitionLog log{{0.0, 0}, {5.0, 4}, {15.0, 4}};
  const double expected = 5.0 * profile[0].power_watts +
                          10.0 * profile[4].power_watts;
  EXPECT_DOUBLE_EQ(CoreEnergy(log, profile), expected);
}

TEST(CoreEnergy, FinalTransitionDrawsNothing) {
  const TransitionLog log{{0.0, 4}, {10.0, 0}};  // ends by entering P0
  EXPECT_DOUBLE_EQ(CoreEnergy(log, Profile()),
                   10.0 * Profile()[4].power_watts);
}

TEST(CoreEnergy, RejectsShortOrUnorderedLogs) {
  EXPECT_THROW((void)CoreEnergy({{0.0, 0}}, Profile()),
               std::invalid_argument);
  EXPECT_THROW((void)CoreEnergy({{5.0, 0}, {1.0, 0}}, Profile()),
               std::invalid_argument);
}

TEST(ClusterEnergyFromLogs, DividesByPowerEfficiency) {
  const Cluster cluster = test::SingleCoreCluster(0.5);
  const std::vector<TransitionLog> logs{{{0.0, 0}, {10.0, 0}}};
  EXPECT_DOUBLE_EQ(ClusterEnergyFromLogs(cluster, logs), 1000.0 / 0.5);
}

TEST(ClusterEnergyFromLogs, SumsOverAllCores) {
  const Cluster cluster({test::SimpleNode(1, 2)});
  const std::vector<TransitionLog> logs{{{0.0, 0}, {10.0, 0}},
                                        {{0.0, 4}, {10.0, 4}}};
  const double expected =
      10.0 * (Profile()[0].power_watts + Profile()[4].power_watts);
  EXPECT_DOUBLE_EQ(ClusterEnergyFromLogs(cluster, logs), expected);
}

TEST(ClusterEnergyFromLogs, RequiresOneLogPerCore) {
  const Cluster cluster({test::SimpleNode(1, 2)});
  EXPECT_THROW(
      (void)ClusterEnergyFromLogs(cluster, {{{0.0, 0}, {1.0, 0}}}),
      std::invalid_argument);
}

TEST(OnlineEnergyMeter, IntegratesConstantPower) {
  const Cluster cluster = test::SingleCoreCluster();
  OnlineEnergyMeter meter(cluster, 0);
  EXPECT_DOUBLE_EQ(meter.total_power(), 100.0);
  meter.AdvanceTo(10.0);
  EXPECT_DOUBLE_EQ(meter.consumed(), 1000.0);
}

TEST(OnlineEnergyMeter, TracksPStateSwitches) {
  const Cluster cluster = test::SingleCoreCluster();
  OnlineEnergyMeter meter(cluster, 0);
  meter.AdvanceTo(5.0);
  meter.SetPState(0, 4);
  meter.AdvanceTo(15.0);
  const double expected =
      5.0 * Profile()[0].power_watts + 10.0 * Profile()[4].power_watts;
  EXPECT_DOUBLE_EQ(meter.consumed(), expected);
  EXPECT_EQ(meter.pstate_of(0), 4u);
}

TEST(OnlineEnergyMeter, AppliesEfficiencyAtTheWall) {
  const Cluster cluster = test::SingleCoreCluster(0.8);
  OnlineEnergyMeter meter(cluster, 0);
  EXPECT_DOUBLE_EQ(meter.total_power(), 100.0 / 0.8);
}

TEST(OnlineEnergyMeter, BudgetCrossingTimeIsExact) {
  const Cluster cluster = test::SingleCoreCluster();
  OnlineEnergyMeter meter(cluster, 0);  // 100 W
  const auto crossing = meter.BudgetCrossingTime(250.0, 100.0);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_DOUBLE_EQ(*crossing, 2.5);
}

TEST(OnlineEnergyMeter, BudgetCrossingBeyondHorizonIsNullopt) {
  const Cluster cluster = test::SingleCoreCluster();
  OnlineEnergyMeter meter(cluster, 0);
  EXPECT_FALSE(meter.BudgetCrossingTime(250.0, 2.0).has_value());
}

TEST(OnlineEnergyMeter, AlreadyExhaustedReportsNow) {
  const Cluster cluster = test::SingleCoreCluster();
  OnlineEnergyMeter meter(cluster, 0);
  meter.AdvanceTo(10.0);  // 1000 consumed
  const auto crossing = meter.BudgetCrossingTime(500.0, 20.0);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_DOUBLE_EQ(*crossing, 10.0);
}

TEST(OnlineEnergyMeter, RejectsTimeTravel) {
  const Cluster cluster = test::SingleCoreCluster();
  OnlineEnergyMeter meter(cluster, 0);
  meter.AdvanceTo(5.0);
  EXPECT_THROW(meter.AdvanceTo(4.0), std::invalid_argument);
}

TEST(CoreEnergy, SampledPowerOverridesProfile) {
  // First interval at an explicit 42 W, second at the profile's P0 power.
  const TransitionLog log{{0.0, 0, 42.0}, {5.0, 0}, {8.0, 0}};
  EXPECT_DOUBLE_EQ(CoreEnergy(log, Profile()), 5.0 * 42.0 + 3.0 * 100.0);
}

TEST(OnlineEnergyMeter, SetPStateWithPowerUsesSampledDraw) {
  const Cluster cluster = test::SingleCoreCluster(0.5);
  OnlineEnergyMeter meter(cluster, 0);
  meter.SetPStateWithPower(0, 2, 42.0);
  EXPECT_DOUBLE_EQ(meter.total_power(), 42.0 / 0.5);
  EXPECT_EQ(meter.pstate_of(0), 2u);
  meter.AdvanceTo(3.0);
  EXPECT_DOUBLE_EQ(meter.consumed(), 3.0 * 84.0);
  // Returning to profile-driven power restores the state average.
  meter.SetPState(0, 0);
  EXPECT_DOUBLE_EQ(meter.total_power(), 100.0 / 0.5);
  EXPECT_THROW(meter.SetPStateWithPower(0, 0, -1.0), std::invalid_argument);
}

class MeterVsLogs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeterVsLogs, OnlineMatchesPostHocOnRandomSchedules) {
  // Property: for a random P-state schedule across a multi-core cluster, the
  // online integrator and the Eq. 1/2 post-hoc computation agree.
  const Cluster cluster(
      {test::SimpleNode(2, 2, 0.9), test::SimpleNode(1, 3, 0.95)});
  util::RngStream rng(GetParam());
  OnlineEnergyMeter meter(cluster, 4);
  std::vector<TransitionLog> logs(cluster.total_cores());
  for (auto& log : logs) log.push_back({0.0, 4});

  double now = 0.0;
  for (int step = 0; step < 100; ++step) {
    now += rng.UniformReal(0.0, 3.0);
    const auto core = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(cluster.total_cores()) - 1));
    const auto state = static_cast<PStateIndex>(rng.UniformInt(0, 4));
    meter.AdvanceTo(now);
    meter.SetPState(core, state);
    if (logs[core].back().pstate != state) {
      logs[core].push_back({now, state});
    }
  }
  now += 1.0;
  meter.AdvanceTo(now);
  for (auto& log : logs) log.push_back({now, log.back().pstate});

  const double post_hoc = ClusterEnergyFromLogs(cluster, logs);
  EXPECT_NEAR(meter.consumed(), post_hoc, 1e-9 * std::abs(post_hoc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeterVsLogs,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace ecdra::cluster
