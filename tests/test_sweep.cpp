// Crash-safe sweep runner: per-trial failure isolation, bounded retry on
// the same substreams, the wall-clock watchdog, and RunTrials' exception
// transparency (a failing trial is named, never silently abandoned).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "sim/experiment_runner.hpp"

namespace ecdra::sim {
namespace {

SetupOptions SmallOptions() {
  SetupOptions options;
  options.cluster.num_nodes = 3;
  options.cvb.num_task_types = 10;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(15, 30, 1.0 / 8.0, 1.0 / 48.0);
  return options;
}

TEST(RunSweep, IsolatesAThrowingTrialAndFinishesTheRest) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 5;
  options.num_threads = 2;
  options.pre_trial_hook = [](std::size_t trial, std::size_t) {
    if (trial == 2) throw std::runtime_error("injected trial bug");
  };

  const SweepResult sweep = RunSweep(setup, "SQ", "en+rob", options);
  EXPECT_FALSE(sweep.complete());
  ASSERT_EQ(sweep.failures.size(), 1u);
  const TrialFailure& failure = sweep.failures[0];
  EXPECT_EQ(failure.heuristic, "SQ");
  EXPECT_EQ(failure.filter_variant, "en+rob");
  EXPECT_EQ(failure.trial_index, 2u);
  EXPECT_EQ(failure.attempts, 1u);
  EXPECT_FALSE(failure.timed_out);
  EXPECT_NE(failure.error.find("injected trial bug"), std::string::npos);

  // The other four trials completed, correctly indexed.
  ASSERT_EQ(sweep.results.size(), 4u);
  EXPECT_EQ(sweep.trial_indices,
            (std::vector<std::size_t>{0, 1, 3, 4}));

  const SummaryStatistics summary = SummarizeSweep(sweep);
  EXPECT_EQ(summary.trials, 4u);
  EXPECT_EQ(summary.failed_trials, 1u);
  EXPECT_EQ(summary.timed_out_trials, 0u);
}

TEST(RunSweep, RetrySucceedsOnTransientFailureWithIdenticalResults) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());

  RunOptions baseline;
  baseline.num_trials = 3;
  const SweepResult reference = RunSweep(setup, "SQ", "en+rob", baseline);
  ASSERT_TRUE(reference.complete());

  // Trial 1 fails on its first attempt only (a transient fault); the retry
  // re-runs the same substreams and must reproduce the reference bits.
  std::atomic<int> failures_injected{0};
  RunOptions options;
  options.num_trials = 3;
  options.max_attempts = 2;
  options.pre_trial_hook = [&](std::size_t trial, std::size_t attempt) {
    if (trial == 1 && attempt == 1) {
      ++failures_injected;
      throw std::runtime_error("transient");
    }
  };
  const SweepResult sweep = RunSweep(setup, "SQ", "en+rob", options);
  EXPECT_EQ(failures_injected.load(), 1);
  ASSERT_TRUE(sweep.complete());
  EXPECT_EQ(sweep.trials_retried, 1u);
  ASSERT_EQ(sweep.results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sweep.results[i].missed_deadlines,
              reference.results[i].missed_deadlines);
    EXPECT_EQ(sweep.results[i].total_energy,
              reference.results[i].total_energy);
    EXPECT_EQ(sweep.results[i].makespan, reference.results[i].makespan);
  }
  EXPECT_EQ(SummarizeSweep(sweep).retried_trials, 1u);
}

TEST(RunSweep, DeterministicFailureExhaustsAllAttempts) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  std::atomic<int> attempts_seen{0};
  RunOptions options;
  options.num_trials = 1;
  options.max_attempts = 3;
  options.pre_trial_hook = [&](std::size_t, std::size_t) {
    ++attempts_seen;
    throw std::logic_error("deterministic bug");
  };
  const SweepResult sweep = RunSweep(setup, "SQ", "en+rob", options);
  EXPECT_EQ(attempts_seen.load(), 3);
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_EQ(sweep.failures[0].attempts, 3u);
  EXPECT_TRUE(sweep.results.empty());
  // Zero-survivor sweeps still summarize (zeroed means, failure counts set).
  const SummaryStatistics summary = SummarizeSweep(sweep);
  EXPECT_EQ(summary.trials, 0u);
  EXPECT_EQ(summary.failed_trials, 1u);
}

TEST(RunSweep, WatchdogTimesOutARunawayTrial) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 1;
  // A deadline no real trial can meet: the engine's event loop checks the
  // wall clock every 64 events and aborts with TrialTimeoutError.
  options.trial_timeout = 1e-9;
  const SweepResult sweep = RunSweep(setup, "SQ", "en+rob", options);
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_TRUE(sweep.failures[0].timed_out);
  EXPECT_NE(sweep.failures[0].error.find("watchdog"), std::string::npos);
  EXPECT_EQ(SummarizeSweep(sweep).timed_out_trials, 1u);
}

TEST(RunSweep, WatchdogOffByDefaultAndHarmlessWhenGenerous) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 2;
  options.trial_timeout = 3600.0;  // generous: must never fire
  const SweepResult sweep = RunSweep(setup, "SQ", "en+rob", options);
  EXPECT_TRUE(sweep.complete());

  RunOptions plain;
  plain.num_trials = 2;
  const SweepResult reference = RunSweep(setup, "SQ", "en+rob", plain);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(sweep.results[i].total_energy,
              reference.results[i].total_energy);
  }
}

TEST(RunTrials, ThrowsNamingTheFailingTripleAfterFinishingTheSweep) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  std::atomic<int> trials_started{0};
  RunOptions options;
  options.num_trials = 4;
  options.num_threads = 2;
  options.pre_trial_hook = [&](std::size_t trial, std::size_t) {
    ++trials_started;
    if (trial == 1) throw std::runtime_error("injected trial bug");
  };
  try {
    (void)RunTrials(setup, "MECT", "rob", options);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    // The failing triple is named in full...
    EXPECT_NE(what.find("MECT"), std::string::npos) << what;
    EXPECT_NE(what.find("rob"), std::string::npos) << what;
    EXPECT_NE(what.find("trial=1"), std::string::npos) << what;
    EXPECT_NE(what.find("injected trial bug"), std::string::npos) << what;
  }
  // ...and no queued trial was abandoned: all four ran.
  EXPECT_EQ(trials_started.load(), 4);
}

TEST(RunSweep, RejectsZeroAttempts) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.max_attempts = 0;
  EXPECT_THROW((void)RunSweep(setup, "SQ", "en+rob", options),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::sim
