#include "sim/experiment_runner.hpp"

#include <gtest/gtest.h>

#include "experiment/paper_config.hpp"

namespace ecdra::sim {
namespace {

/// Small, fast setup for runner tests: 3 nodes, 10 types, 60-task window.
SetupOptions SmallOptions() {
  SetupOptions options;
  options.cluster.num_nodes = 3;
  options.cvb.num_task_types = 10;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(15, 30, 1.0 / 8.0, 1.0 / 48.0);
  return options;
}

TEST(BuildExperimentSetup, DerivedQuantitiesAreConsistent) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  EXPECT_EQ(setup.cluster.num_nodes(), 3u);
  EXPECT_EQ(setup.etc.num_types(), 10u);
  EXPECT_EQ(setup.etc.num_machines(), 3u);
  EXPECT_EQ(setup.window_size, 60u);
  EXPECT_DOUBLE_EQ(setup.t_avg, setup.types.GrandMeanExec());
  // Eq. 8 by hand.
  double power_sum = 0.0;
  for (const cluster::Node& node : setup.cluster.nodes()) {
    for (const cluster::PState& p : node.pstates) power_sum += p.power_watts;
  }
  EXPECT_DOUBLE_EQ(setup.p_avg,
                   power_sum / (3.0 * cluster::kNumPStates));
  EXPECT_DOUBLE_EQ(setup.energy_budget, setup.t_avg * setup.p_avg * 1000.0);
  EXPECT_EQ(setup.master_seed, 3u);
}

TEST(BuildExperimentSetup, DeterministicPerSeed) {
  const ExperimentSetup a = BuildExperimentSetup(5, SmallOptions());
  const ExperimentSetup b = BuildExperimentSetup(5, SmallOptions());
  EXPECT_DOUBLE_EQ(a.t_avg, b.t_avg);
  EXPECT_DOUBLE_EQ(a.energy_budget, b.energy_budget);
  EXPECT_EQ(a.cluster.total_cores(), b.cluster.total_cores());
  const ExperimentSetup c = BuildExperimentSetup(6, SmallOptions());
  EXPECT_NE(a.t_avg, c.t_avg);
}

TEST(RunSingleTrial, IsDeterministic) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  const TrialResult a = RunSingleTrial(setup, "SQ", "en+rob", 0);
  const TrialResult b = RunSingleTrial(setup, "SQ", "en+rob", 0);
  EXPECT_EQ(a.missed_deadlines, b.missed_deadlines);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(RunSingleTrial, TrialsDifferByIndex) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  const TrialResult a = RunSingleTrial(setup, "SQ", "none", 0);
  const TrialResult b = RunSingleTrial(setup, "SQ", "none", 1);
  EXPECT_NE(a.makespan, b.makespan);  // different arrivals
}

TEST(RunSingleTrial, ResultInvariantsHold) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  for (const std::string& heuristic : core::HeuristicNames()) {
    for (const std::string& variant : core::FilterVariantNames()) {
      const TrialResult result =
          RunSingleTrial(setup, heuristic, variant, 2);
      EXPECT_EQ(result.window_size, 60u);
      EXPECT_EQ(result.completed + result.missed_deadlines, 60u);
      EXPECT_EQ(result.missed_deadlines,
                result.discarded + result.finished_late +
                    result.on_time_but_over_budget + result.cancelled);
      EXPECT_GT(result.total_energy, 0.0);
      EXPECT_GT(result.makespan, 0.0);
    }
  }
}

TEST(RunTrials, MatchesSingleTrialsInOrder) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 4;
  options.num_threads = 2;
  const std::vector<TrialResult> batch =
      RunTrials(setup, "MECT", "en", options);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t trial = 0; trial < 4; ++trial) {
    const TrialResult single =
        RunSingleTrial(setup, "MECT", "en", trial, options);
    EXPECT_EQ(batch[trial].missed_deadlines, single.missed_deadlines);
    EXPECT_DOUBLE_EQ(batch[trial].total_energy, single.total_energy);
  }
}

TEST(RunTrials, CollectsTaskRecordsWhenAsked) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 1;
  options.collect_task_records = true;
  const std::vector<TrialResult> results =
      RunTrials(setup, "LL", "en+rob", options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].task_records.size(), 60u);
}

TEST(RunTrials, RejectsZeroTrials) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 0;
  EXPECT_THROW((void)RunTrials(setup, "SQ", "none", options),
               std::invalid_argument);
}

TEST(PaperConfig, MatchesSectionSix) {
  const SetupOptions options = experiment::PaperSetupOptions();
  EXPECT_EQ(options.cluster.num_nodes, 8u);
  EXPECT_EQ(options.cvb.num_task_types, 100u);
  EXPECT_DOUBLE_EQ(options.cvb.task_mean, 750.0);
  EXPECT_DOUBLE_EQ(options.cvb.task_cov, 0.25);
  EXPECT_DOUBLE_EQ(options.cvb.machine_cov, 0.25);
  ASSERT_EQ(options.workload.arrivals.phases.size(), 3u);
  EXPECT_EQ(options.workload.arrivals.total_tasks(), 1000u);
  EXPECT_DOUBLE_EQ(options.budget_task_count, 1000.0);
  EXPECT_EQ(experiment::PaperRunOptions().num_trials, 50u);
}

TEST(PaperConfig, CanonicalSetupIsOversubscribableButFeasible) {
  const ExperimentSetup setup = experiment::BuildPaperSetup();
  // Burst arrivals outpace even the all-P0 service rate (oversubscription);
  // lull arrivals sit below the all-P-state-average service rate.
  const double cores = static_cast<double>(setup.cluster.total_cores());
  const double p0_mean = setup.t_avg /
                         [&] {
                           // ratio between grand mean and P0-only mean
                           double all = 0.0, p0 = 0.0;
                           for (std::size_t n = 0;
                                n < setup.cluster.num_nodes(); ++n) {
                             for (cluster::PStateIndex s = 0;
                                  s < cluster::kNumPStates; ++s) {
                               all += setup.cluster.node(n)
                                          .pstates[s]
                                          .time_multiplier;
                             }
                             p0 += 1.0;
                           }
                           return all / (p0 * cluster::kNumPStates);
                         }();
  const double burst_load = (1.0 / 8.0) * p0_mean;   // cores needed at P0
  const double lull_load = (1.0 / 48.0) * setup.t_avg;
  EXPECT_GT(burst_load, cores);  // oversubscribed during bursts
  EXPECT_LT(lull_load, cores);   // undersubscribed during the lull
}

}  // namespace
}  // namespace ecdra::sim
