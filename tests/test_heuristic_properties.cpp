// Property tests: each heuristic's defining invariant must hold on
// randomized environments — random clusters, random ETC matrices, random
// core-queue states, random tasks — not just on the hand-built fixtures.
#include <gtest/gtest.h>

#include "cluster/cluster_builder.hpp"
#include "core/factory.hpp"
#include "core/mapping_context.hpp"
#include "robustness/core_queue_model.hpp"
#include "util/rng.hpp"
#include "workload/etc_matrix.hpp"
#include "workload/task_type_table.hpp"

namespace ecdra::core {
namespace {

/// A randomized scheduling scene: small cluster, pmf table, busy cores.
class Scene {
 public:
  explicit Scene(std::uint64_t seed) : rng_(seed) {
    cluster::ClusterBuilderOptions cluster_options;
    cluster_options.num_nodes = 3;
    cluster_options.max_processors = 2;
    cluster_options.max_cores_per_processor = 2;
    util::RngStream cluster_rng = rng_.Substream("cluster");
    cluster_.emplace(cluster::BuildRandomCluster(cluster_rng, cluster_options));

    workload::CvbOptions cvb;
    cvb.num_task_types = 4;
    cvb.num_machines = cluster_->num_nodes();
    util::RngStream etc_rng = rng_.Substream("etc");
    table_.emplace(*cluster_, workload::GenerateCvbMatrix(etc_rng, cvb), 0.25);

    cores_.resize(cluster_->total_cores());
    // Randomly load some cores with running + queued work.
    for (std::size_t flat = 0; flat < cores_.size(); ++flat) {
      const std::int64_t depth = rng_.UniformInt(0, 3);
      for (std::int64_t i = 0; i < depth; ++i) {
        const auto type = static_cast<std::size_t>(rng_.UniformInt(0, 3));
        const auto pstate = static_cast<cluster::PStateIndex>(
            rng_.UniformInt(0, cluster::kNumPStates - 1));
        const pmf::Pmf* exec =
            &table_->ExecPmf(type, cluster_->NodeIndexOf(flat), pstate);
        const robustness::ModeledTask task{next_id_++, exec,
                                           rng_.UniformReal(500.0, 4000.0)};
        if (cores_[flat].idle()) {
          cores_[flat].StartTask(task, 0.0);
        } else {
          cores_[flat].Enqueue(task);
        }
      }
    }
    task_ = workload::Task{next_id_++, static_cast<std::size_t>(
                                           rng_.UniformInt(0, 3)),
                           now_, now_ + rng_.UniformReal(800.0, 3000.0)};
  }

  [[nodiscard]] MappingContext Context() {
    return MappingContext(*cluster_, *table_, cores_, task_, now_);
  }

 private:
  util::RngStream rng_;
  std::optional<cluster::Cluster> cluster_;
  std::optional<workload::TaskTypeTable> table_;
  std::vector<robustness::CoreQueueModel> cores_;
  workload::Task task_;
  double now_ = 100.0;
  std::size_t next_id_ = 0;
};

class HeuristicInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicInvariants, SqChoiceHasMinimalQueueLength) {
  Scene scene(GetParam());
  MappingContext ctx = scene.Context();
  const auto chosen = MakeHeuristic("SQ", util::RngStream(1))->Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  const std::size_t chosen_len = ctx.QueueLength(*chosen);
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(ctx.QueueLength(candidate), chosen_len);
  }
}

TEST_P(HeuristicInvariants, MectChoiceHasMinimalExpectedCompletion) {
  Scene scene(GetParam());
  MappingContext ctx = scene.Context();
  const auto chosen = MakeHeuristic("MECT", util::RngStream(1))->Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  const double chosen_ect = ctx.ExpectedCompletionTime(*chosen);
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(ctx.ExpectedCompletionTime(candidate) + 1e-9, chosen_ect);
  }
}

TEST_P(HeuristicInvariants, LlChoiceHasMinimalLoad) {
  Scene scene(GetParam());
  MappingContext ctx = scene.Context();
  const auto chosen = MakeHeuristic("LL", util::RngStream(1))->Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  const double chosen_load =
      chosen->eec * (1.0 - ctx.OnTimeProbability(*chosen));
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(candidate.eec * (1.0 - ctx.OnTimeProbability(candidate)) + 1e-9,
              chosen_load);
  }
}

TEST_P(HeuristicInvariants, MetChoiceHasMinimalExecutionTime) {
  Scene scene(GetParam());
  MappingContext ctx = scene.Context();
  const auto chosen = MakeHeuristic("MET", util::RngStream(1))->Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(candidate.eet + 1e-12, chosen->eet);
  }
}

TEST_P(HeuristicInvariants, OlbChoiceHasMinimalReadyTime) {
  Scene scene(GetParam());
  MappingContext ctx = scene.Context();
  const auto chosen = MakeHeuristic("OLB", util::RngStream(1))->Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  const double chosen_ready =
      ctx.ExpectedCompletionTime(*chosen) - chosen->eet;
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(ctx.ExpectedCompletionTime(candidate) - candidate.eet + 1e-9,
              chosen_ready);
  }
}

TEST_P(HeuristicInvariants, KpbChoiceIsWithinTheKPercentFastest) {
  Scene scene(GetParam());
  MappingContext ctx = scene.Context();
  const double percent = 30.0;
  const auto chosen = MakeHeuristic("KPB", util::RngStream(1))->Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  // The chosen EET must be within the k% fastest EETs.
  std::vector<double> eets;
  eets.reserve(ctx.candidates().size());
  for (const Candidate& candidate : ctx.candidates()) {
    eets.push_back(candidate.eet);
  }
  std::sort(eets.begin(), eets.end());
  const auto keep = static_cast<std::size_t>(
      std::ceil(static_cast<double>(eets.size()) * percent / 100.0));
  EXPECT_LE(chosen->eet, eets[keep - 1] + 1e-12);
}

TEST_P(HeuristicInvariants, FiltersOnlyRemoveCandidates) {
  Scene scene(GetParam());
  MappingContext unfiltered = scene.Context();
  const std::vector<Candidate> before = unfiltered.candidates();

  Scene scene2(GetParam());
  MappingContext filtered = scene2.Context();
  filtered.SetBudgetView(5e5, 10);
  for (const auto& filter : MakeFilterChain("en+rob")) {
    filter->Apply(filtered);
  }
  // Every survivor must exist in the unfiltered set (filters are a subset
  // operation; they never invent or mutate candidates).
  for (const Candidate& survivor : filtered.candidates()) {
    bool found = false;
    for (const Candidate& original : before) {
      if (original.assignment == survivor.assignment &&
          original.eet == survivor.eet) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_LE(filtered.candidates().size(), before.size());
}

INSTANTIATE_TEST_SUITE_P(RandomScenes, HeuristicInvariants,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace ecdra::core
