#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ecdra::util {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedJob) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, RunsManyJobsAndPreservesResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, AllJobsRunExactlyOnce) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter] { ++counter; });
    }
    // Destructor must wait for all 50, not abandon queued work.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, MoveOnlyResultsWork) {
  ThreadPool pool(1);
  auto future =
      pool.Submit([] { return std::make_unique<int>(7); });
  EXPECT_EQ(*future.get(), 7);
}

TEST(ThreadPool, WorkerSurvivesAThrowingJob) {
  ThreadPool pool(1);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  // The single worker must still be alive to run the next job.
  auto good = pool.Submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobsThenRejectsSubmit) {
  std::atomic<int> counter{0};
  ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_THROW((void)pool.Submit([] { return 0; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_NO_THROW(pool.Shutdown());
  // The destructor calls Shutdown a third time; it must also be a no-op.
}

}  // namespace
}  // namespace ecdra::util
