#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ecdra::sim {
namespace {

bool Before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.seq < b.seq;
}

TEST(EventQueue, PopsInTimeKindSeqOrder) {
  EventQueue queue(4);
  queue.Push(Event{5.0, 2, 7, 1});
  queue.Push(Event{1.0, 2, 8, 2});
  queue.Push(Event{5.0, 0, 2, 3, 42});  // finish first among the t=5 ties
  queue.Push(Event{5.0, 1, 0, 4});
  queue.Push(Event{1.0, 2, 9, 0});  // same (time, kind): lower seq first

  EXPECT_EQ(queue.PopMin().seq, 0u);
  EXPECT_EQ(queue.PopMin().seq, 2u);
  const Event finish = queue.PopMin();
  EXPECT_EQ(finish.kind, 0);
  EXPECT_EQ(finish.tag, 42u);
  EXPECT_EQ(queue.PopMin().kind, 1);
  EXPECT_EQ(queue.PopMin().kind, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, UpdateFinishReTimesInPlace) {
  EventQueue queue(2);
  queue.Push(Event{10.0, 0, 0, 0, 100});
  queue.Push(Event{20.0, 2, 5, 1});
  ASSERT_TRUE(queue.HasFinish(0));

  // Throttle slows the task: its finish moves past the arrival.
  queue.UpdateFinish(0, 30.0, 100, 2);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.PopMin().kind, 2);
  const Event finish = queue.PopMin();
  EXPECT_EQ(finish.time, 30.0);
  EXPECT_EQ(finish.tag, 100u);
  EXPECT_FALSE(queue.HasFinish(0));
}

TEST(EventQueue, UpdateFinishCanMoveEarlier) {
  EventQueue queue(2);
  queue.Push(Event{50.0, 0, 1, 0, 7});
  queue.Push(Event{20.0, 2, 3, 1});
  // Throttle ends: remaining work shrinks, the finish moves up front.
  queue.UpdateFinish(1, 5.0, 7, 2);
  EXPECT_EQ(queue.PopMin().kind, 0);
  EXPECT_EQ(queue.PopMin().kind, 2);
}

TEST(EventQueue, RemoveFinishDeletesTheEntry) {
  EventQueue queue(2);
  queue.Push(Event{10.0, 0, 0, 0, 100});
  queue.Push(Event{20.0, 2, 5, 1});
  queue.RemoveFinish(0);
  EXPECT_FALSE(queue.HasFinish(0));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.PopMin().kind, 2);
  EXPECT_TRUE(queue.empty());
  // The core can schedule a fresh finish afterwards.
  queue.Push(Event{30.0, 0, 0, 2, 101});
  EXPECT_TRUE(queue.HasFinish(0));
}

TEST(EventQueue, FuzzMatchesReferenceOrdering) {
  // Random pushes, finish re-times, removals, and pops must drain in the
  // exact (time, kind, seq) order a sort of the surviving events gives.
  constexpr std::size_t kCores = 8;
  util::RngStream rng(2024);
  EventQueue queue(kCores);
  std::vector<Event> reference;
  std::uint64_t seq = 0;

  const auto reference_finish = [&](std::size_t core) {
    return std::find_if(reference.begin(), reference.end(), [&](const Event& e) {
      return e.kind == 0 && e.index == core;
    });
  };

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.UniformReal(0.0, 1.0);
    const auto core =
        static_cast<std::size_t>(rng.UniformReal(0.0, 1.0) * kCores) % kCores;
    if (roll < 0.35) {
      const Event event{rng.UniformReal(0.0, 1000.0), 2, core, seq++};
      queue.Push(event);
      reference.push_back(event);
    } else if (roll < 0.55) {
      if (!queue.HasFinish(core)) {
        const Event event{rng.UniformReal(0.0, 1000.0), 0, core, seq++, core};
        queue.Push(event);
        reference.push_back(event);
      } else {
        const double time = rng.UniformReal(0.0, 1000.0);
        queue.UpdateFinish(core, time, core + 1, seq);
        auto it = reference_finish(core);
        ASSERT_NE(it, reference.end());
        it->time = time;
        it->tag = core + 1;
        it->seq = seq++;
      }
    } else if (roll < 0.65) {
      if (queue.HasFinish(core)) {
        queue.RemoveFinish(core);
        auto it = reference_finish(core);
        ASSERT_NE(it, reference.end());
        reference.erase(it);
      }
    } else if (!reference.empty()) {
      const Event popped = queue.PopMin();
      const auto min_it =
          std::min_element(reference.begin(), reference.end(), Before);
      EXPECT_EQ(popped.time, min_it->time);
      EXPECT_EQ(popped.kind, min_it->kind);
      EXPECT_EQ(popped.seq, min_it->seq);
      EXPECT_EQ(popped.index, min_it->index);
      EXPECT_EQ(popped.tag, min_it->tag);
      reference.erase(min_it);
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  while (!reference.empty()) {
    const Event popped = queue.PopMin();
    const auto min_it =
        std::min_element(reference.begin(), reference.end(), Before);
    ASSERT_EQ(popped.seq, min_it->seq);
    reference.erase(min_it);
  }
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace ecdra::sim
