#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ecdra::util {
namespace {

TEST(SplitMix64, IsDeterministicAndScrambles) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  EXPECT_NE(SplitMix64(0), 0u);
}

TEST(HashName, DistinguishesNames) {
  EXPECT_EQ(HashName("arrivals"), HashName("arrivals"));
  EXPECT_NE(HashName("arrivals"), HashName("types"));
  EXPECT_NE(HashName(""), HashName("a"));
}

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.UniformReal(0, 1), b.UniformReal(0, 1));
  }
}

TEST(RngStream, DifferentSeedsDiffer) {
  RngStream a(1);
  RngStream b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformReal(0, 1) == b.UniformReal(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngStream, SubstreamIndependentOfDrawCount) {
  RngStream a(7);
  RngStream b(7);
  (void)b.UniformReal(0, 1);  // advance b's own state
  RngStream sub_a = a.Substream("x", 3);
  RngStream sub_b = b.Substream("x", 3);
  EXPECT_DOUBLE_EQ(sub_a.UniformReal(0, 1), sub_b.UniformReal(0, 1));
}

TEST(RngStream, SubstreamsDifferByNameAndIndex) {
  RngStream root(9);
  RngStream by_name_1 = root.Substream("a", 0);
  RngStream by_name_2 = root.Substream("b", 0);
  RngStream by_index = root.Substream("a", 1);
  const double v1 = by_name_1.UniformReal(0, 1);
  EXPECT_NE(v1, by_name_2.UniformReal(0, 1));
  EXPECT_NE(v1, by_index.UniformReal(0, 1));
}

TEST(RngStream, UniformRealRespectsBounds) {
  RngStream rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngStream, UniformIntCoversClosedRange) {
  RngStream rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values of a small range appear
}

TEST(RngStream, ExponentialHasRequestedMean) {
  RngStream rng(11);
  const double rate = 0.125;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.2 / rate);
}

TEST(RngStream, GammaHasRequestedMoments) {
  RngStream rng(13);
  const double shape = 16.0;
  const double scale = 750.0 / 16.0;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gamma(shape, scale);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.02 * shape * scale);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0 / std::sqrt(shape), 0.02);
}

TEST(RngStream, DiscreteFollowsWeights) {
  RngStream rng(17);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const std::size_t v = rng.Discrete(weights);
    ASSERT_LT(v, 2u);
    ones += v == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.03);
}

TEST(RngStream, InvalidArgumentsThrow) {
  RngStream rng(1);
  EXPECT_THROW((void)rng.UniformReal(2, 1), std::invalid_argument);
  EXPECT_THROW((void)rng.UniformInt(2, 1), std::invalid_argument);
  EXPECT_THROW((void)rng.Exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.Gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.Gamma(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.Discrete({}), std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::util
