#include "robustness/core_queue_model.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/rng.hpp"

namespace ecdra::robustness {
namespace {

TEST(CoreQueueModel, EmptyCoreIsReadyNow) {
  const CoreQueueModel core;
  EXPECT_TRUE(core.idle());
  EXPECT_EQ(core.queue_length(), 0u);
  const pmf::Pmf& ready = core.ReadyPmf(12.5);
  EXPECT_EQ(ready.size(), 1u);
  EXPECT_DOUBLE_EQ(ready.Expectation(), 12.5);
  EXPECT_DOUBLE_EQ(core.ExpectedReadyTime(12.5), 12.5);
}

TEST(CoreQueueModel, RunningTaskShiftsByStartTime) {
  const pmf::Pmf exec = test::TwoPoint(10.0, 20.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 100.0}, 5.0);
  EXPECT_FALSE(core.idle());
  EXPECT_EQ(core.queue_length(), 1u);
  // Queried right at the start: completion at 15 or 25, each 0.5.
  const pmf::Pmf& ready = core.ReadyPmf(5.0);
  EXPECT_DOUBLE_EQ(ready.Expectation(), 20.0);
  EXPECT_DOUBLE_EQ(ready.Min(), 15.0);
  EXPECT_DOUBLE_EQ(ready.Max(), 25.0);
}

TEST(CoreQueueModel, QueryLaterTruncatesAndRenormalizes) {
  const pmf::Pmf exec = test::TwoPoint(10.0, 20.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 100.0}, 0.0);
  // At t = 15.0001 the 10-second impulse is in the past; all mass on 20.
  const pmf::Pmf& ready = core.ReadyPmf(15.0001);
  EXPECT_EQ(ready.size(), 1u);
  EXPECT_DOUBLE_EQ(ready.Expectation(), 20.0);
}

TEST(CoreQueueModel, AllMassPastMeansImminent) {
  const pmf::Pmf exec = test::TwoPoint(10.0, 20.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 100.0}, 0.0);
  const pmf::Pmf& ready = core.ReadyPmf(30.0);
  EXPECT_EQ(ready.size(), 1u);
  EXPECT_DOUBLE_EQ(ready.Expectation(), 30.0);
}

TEST(CoreQueueModel, QueuedTasksConvolveIntoReady) {
  const pmf::Pmf exec_a = pmf::Pmf::Delta(10.0);
  const pmf::Pmf exec_b = test::TwoPoint(5.0, 7.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec_a, 100.0}, 0.0);
  core.Enqueue(ModeledTask{1, &exec_b, 100.0});
  EXPECT_EQ(core.queue_length(), 2u);
  const pmf::Pmf& ready = core.ReadyPmf(0.0);
  EXPECT_DOUBLE_EQ(ready.Expectation(), 16.0);
  EXPECT_DOUBLE_EQ(ready.Min(), 15.0);
  EXPECT_DOUBLE_EQ(ready.Max(), 17.0);
}

TEST(CoreQueueModel, ExpectedReadyTimeMatchesReadyPmfExpectation) {
  const pmf::Pmf exec_a = test::TwoPoint(10.0, 30.0);
  const pmf::Pmf exec_b = test::TwoPoint(5.0, 9.0);
  const pmf::Pmf exec_c = pmf::Pmf::Delta(4.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec_a, 100.0}, 2.0);
  core.Enqueue(ModeledTask{1, &exec_b, 100.0});
  core.Enqueue(ModeledTask{2, &exec_c, 100.0});
  for (const double now : {2.0, 11.0, 13.0, 31.9}) {
    EXPECT_NEAR(core.ExpectedReadyTime(now),
                core.ReadyPmf(now).Expectation(), 1e-9)
        << "now=" << now;
  }
}

TEST(CoreQueueModel, StartNextPromotesFifoOrder) {
  const pmf::Pmf exec = pmf::Pmf::Delta(10.0);
  const pmf::Pmf exec_b = pmf::Pmf::Delta(20.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 50.0}, 0.0);
  core.Enqueue(ModeledTask{1, &exec_b, 60.0});
  core.Enqueue(ModeledTask{2, &exec, 70.0});
  core.FinishRunning();
  core.StartNext(10.0);
  ASSERT_TRUE(core.running().has_value());
  EXPECT_EQ(core.running()->task_id, 1u);
  EXPECT_EQ(core.queue_length(), 2u);
  // Ready now reflects task 1 running from t=10 plus queued task 2.
  EXPECT_DOUBLE_EQ(core.ReadyPmf(10.0).Expectation(), 40.0);
}

TEST(CoreQueueModel, FinishLastTaskEmptiesCore) {
  const pmf::Pmf exec = pmf::Pmf::Delta(10.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 50.0}, 0.0);
  core.FinishRunning();
  EXPECT_TRUE(core.idle());
  EXPECT_EQ(core.queue_length(), 0u);
  EXPECT_DOUBLE_EQ(core.ReadyPmf(10.0).Expectation(), 10.0);
}

TEST(CoreQueueModel, CacheInvalidatesOnMutation) {
  const pmf::Pmf exec = pmf::Pmf::Delta(10.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 50.0}, 0.0);
  EXPECT_DOUBLE_EQ(core.ReadyPmf(0.0).Expectation(), 10.0);
  core.Enqueue(ModeledTask{1, &exec, 60.0});
  // Same query time, changed state: the memo must not serve stale data.
  EXPECT_DOUBLE_EQ(core.ReadyPmf(0.0).Expectation(), 20.0);
}

TEST(CoreQueueModel, CacheServesRepeatQueriesAtSameTime) {
  const pmf::Pmf exec = test::TwoPoint(10.0, 20.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec, 50.0}, 0.0);
  const pmf::Pmf& first = core.ReadyPmf(1.0);
  const pmf::Pmf& second = core.ReadyPmf(1.0);
  EXPECT_EQ(&first, &second);  // same memoized object
}

TEST(CoreQueueModel, SuffixRebuildAfterDequeueIsCorrect) {
  const pmf::Pmf exec_a = pmf::Pmf::Delta(10.0);
  const pmf::Pmf exec_b = test::TwoPoint(2.0, 4.0);
  const pmf::Pmf exec_c = test::TwoPoint(1.0, 3.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &exec_a, 0.0}, 0.0);
  core.Enqueue(ModeledTask{1, &exec_b, 0.0});
  core.Enqueue(ModeledTask{2, &exec_c, 0.0});
  core.FinishRunning();
  core.StartNext(10.0);  // b runs from 10, c queued
  const pmf::Pmf& ready = core.ReadyPmf(10.0);
  // b completes at 12 or 14; plus c's 1 or 3: support {13, 15, 17} weighted.
  EXPECT_DOUBLE_EQ(ready.Expectation(), 15.0);
  EXPECT_DOUBLE_EQ(ready.Min(), 13.0);
  EXPECT_DOUBLE_EQ(ready.Max(), 17.0);
}

TEST(CoreQueueModel, MisuseThrows) {
  const pmf::Pmf exec = pmf::Pmf::Delta(10.0);
  CoreQueueModel core;
  EXPECT_THROW(core.Enqueue(ModeledTask{0, &exec, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(core.FinishRunning(), std::invalid_argument);
  EXPECT_THROW(core.StartNext(0.0), std::invalid_argument);
  core.StartTask(ModeledTask{0, &exec, 0.0}, 0.0);
  EXPECT_THROW(core.StartTask(ModeledTask{1, &exec, 0.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(core.StartTask(ModeledTask{1, nullptr, 0.0}, 0.0),
               std::invalid_argument);
}

class RandomizedQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedQueueModel, ExpectationShortcutAlwaysMatches) {
  // Property: under random enqueue/finish sequences, the scalar
  // ExpectedReadyTime always equals the full ReadyPmf expectation.
  util::RngStream rng(GetParam());
  std::vector<pmf::Pmf> execs;
  for (int i = 0; i < 8; ++i) {
    execs.push_back(test::TwoPoint(rng.UniformReal(1.0, 10.0),
                                   rng.UniformReal(10.0, 30.0)));
  }
  CoreQueueModel core;
  double now = 0.0;
  std::size_t next_id = 0;
  for (int step = 0; step < 60; ++step) {
    now += rng.UniformReal(0.0, 5.0);
    const bool arrive = rng.UniformReal(0, 1) < 0.6 || core.idle();
    if (arrive) {
      const pmf::Pmf* exec =
          &execs[static_cast<std::size_t>(rng.UniformInt(0, 7))];
      if (core.idle()) {
        core.StartTask(ModeledTask{next_id++, exec, now + 50.0}, now);
      } else {
        core.Enqueue(ModeledTask{next_id++, exec, now + 50.0});
      }
    } else {
      core.FinishRunning();
      if (core.queue_length() > 0) core.StartNext(now);
    }
    EXPECT_NEAR(core.ExpectedReadyTime(now), core.ReadyPmf(now).Expectation(),
                1e-6 * (1.0 + now));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedQueueModel,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ecdra::robustness
