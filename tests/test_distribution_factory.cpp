#include "pmf/distribution_factory.hpp"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace ecdra::pmf {
namespace {

TEST(DiscretizedGamma, MeanIsExact) {
  const Pmf pmf = DiscretizedGamma(750.0, 0.25);
  EXPECT_NEAR(pmf.Expectation(), 750.0, 1e-9);
}

TEST(DiscretizedGamma, ImpulseCountMatchesOptions) {
  DiscretizeOptions options;
  options.num_impulses = 24;
  EXPECT_EQ(DiscretizedGamma(750.0, 0.25, options).size(), 24u);
  options.num_impulses = 7;
  EXPECT_EQ(DiscretizedGamma(750.0, 0.25, options).size(), 7u);
  options.num_impulses = 1;
  const Pmf one = DiscretizedGamma(750.0, 0.25, options);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_NEAR(one.Expectation(), 750.0, 1e-9);
}

TEST(DiscretizedGamma, EqualProbabilityBins) {
  const Pmf pmf = DiscretizedGamma(100.0, 0.5);
  for (const Impulse& imp : pmf.impulses()) {
    EXPECT_NEAR(imp.prob, 1.0 / static_cast<double>(pmf.size()), 1e-12);
  }
}

class DiscretizedGammaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DiscretizedGammaSweep, CovApproximatelyRecovered) {
  const auto [mean, cov] = GetParam();
  DiscretizeOptions options;
  options.num_impulses = 64;  // fine enough to estimate the CoV well
  const Pmf pmf = DiscretizedGamma(mean, cov, options);
  EXPECT_NEAR(pmf.Expectation(), mean, 1e-9 * mean);
  const double sample_cov = std::sqrt(pmf.Variance()) / pmf.Expectation();
  EXPECT_NEAR(sample_cov, cov, 0.10 * cov);
  EXPECT_GT(pmf.Min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    MeansAndCovs, DiscretizedGammaSweep,
    ::testing::Combine(::testing::Values(10.0, 750.0, 5000.0),
                       ::testing::Values(0.1, 0.25, 0.5)));

TEST(DiscretizedGamma, SupportWidensWithSmallerTailClip) {
  DiscretizeOptions tight;
  tight.tail_clip = 0.05;
  DiscretizeOptions loose;
  loose.tail_clip = 1e-4;
  const Pmf narrow = DiscretizedGamma(750.0, 0.25, tight);
  const Pmf wide = DiscretizedGamma(750.0, 0.25, loose);
  EXPECT_LT(narrow.Max() - narrow.Min(), wide.Max() - wide.Min());
}

TEST(DiscretizedGamma, InvalidArgumentsThrow) {
  EXPECT_THROW((void)DiscretizedGamma(0.0, 0.25), std::invalid_argument);
  EXPECT_THROW((void)DiscretizedGamma(750.0, 0.0), std::invalid_argument);
  DiscretizeOptions bad;
  bad.num_impulses = 0;
  EXPECT_THROW((void)DiscretizedGamma(750.0, 0.25, bad),
               std::invalid_argument);
  bad = DiscretizeOptions{};
  bad.tail_clip = 0.5;
  EXPECT_THROW((void)DiscretizedGamma(750.0, 0.25, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::pmf
