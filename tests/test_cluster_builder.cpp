#include "cluster/cluster_builder.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ecdra::cluster {
namespace {

TEST(ClusterBuilder, RespectsStructuralBounds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::RngStream rng(seed);
    const Cluster cluster = BuildRandomCluster(rng);
    EXPECT_EQ(cluster.num_nodes(), 8u);
    for (const Node& node : cluster.nodes()) {
      EXPECT_GE(node.num_processors, 1u);
      EXPECT_LE(node.num_processors, 4u);
      EXPECT_GE(node.cores_per_processor, 1u);
      EXPECT_LE(node.cores_per_processor, 4u);
      EXPECT_GE(node.power_efficiency, 0.90);
      EXPECT_LE(node.power_efficiency, 0.98);
    }
  }
}

TEST(ClusterBuilder, RespectsPStateDistributions) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::RngStream rng(seed);
    const Cluster cluster = BuildRandomCluster(rng);
    for (const Node& node : cluster.nodes()) {
      // P0 power from U(125, 135).
      EXPECT_GE(node.pstates[0].power_watts, 125.0);
      EXPECT_LE(node.pstates[0].power_watts, 135.0);
      // Minimum frequency at least 42% of maximum (§VI).
      EXPECT_GE(node.pstates[4].frequency_ratio, 0.42);
      // Per-step performance gain within 15-25%.
      for (std::size_t s = 1; s < kNumPStates; ++s) {
        const double gain = node.pstates[s].time_multiplier /
                                node.pstates[s - 1].time_multiplier -
                            1.0;
        EXPECT_GE(gain, 0.15 - 1e-12);
        EXPECT_LE(gain, 0.25 + 1e-12);
      }
      // Voltages from the sampled low/high bands.
      EXPECT_GE(node.pstates[4].voltage, 1.000);
      EXPECT_LE(node.pstates[4].voltage, 1.150);
      EXPECT_GE(node.pstates[0].voltage, 1.400);
      EXPECT_LE(node.pstates[0].voltage, 1.550);
    }
  }
}

TEST(ClusterBuilder, LowStatePowerNearQuarterOfHigh) {
  // §VI: "in practice, this results in a power consumption for the low
  // P-state of about 25% that in the high P-state".
  util::RngStream rng(99);
  double ratio_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 20; ++i) {
    const Cluster cluster = BuildRandomCluster(rng);
    for (const Node& node : cluster.nodes()) {
      ratio_sum += node.pstates[4].power_watts / node.pstates[0].power_watts;
      ++count;
    }
  }
  const double mean_ratio = ratio_sum / count;
  EXPECT_GT(mean_ratio, 0.18);
  EXPECT_LT(mean_ratio, 0.33);
}

TEST(ClusterBuilder, DeterministicPerSeed) {
  util::RngStream a(1234);
  util::RngStream b(1234);
  const Cluster ca = BuildRandomCluster(a);
  const Cluster cb = BuildRandomCluster(b);
  ASSERT_EQ(ca.total_cores(), cb.total_cores());
  for (std::size_t i = 0; i < ca.num_nodes(); ++i) {
    EXPECT_EQ(ca.node(i).num_processors, cb.node(i).num_processors);
    EXPECT_DOUBLE_EQ(ca.node(i).power_efficiency,
                     cb.node(i).power_efficiency);
    for (std::size_t s = 0; s < kNumPStates; ++s) {
      EXPECT_DOUBLE_EQ(ca.node(i).pstates[s].power_watts,
                       cb.node(i).pstates[s].power_watts);
    }
  }
}

TEST(ClusterBuilder, NodesAreHeterogeneous) {
  util::RngStream rng(5);
  const Cluster cluster = BuildRandomCluster(rng);
  // With 8 independently sampled nodes, at least two should differ in P0
  // power (continuous distribution — ties have probability zero).
  bool differ = false;
  for (std::size_t i = 1; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i).pstates[0].power_watts !=
        cluster.node(0).pstates[0].power_watts) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(ClusterBuilder, HonorsCustomOptions) {
  ClusterBuilderOptions options;
  options.num_nodes = 3;
  options.min_processors = 2;
  options.max_processors = 2;
  options.min_cores_per_processor = 3;
  options.max_cores_per_processor = 3;
  util::RngStream rng(1);
  const Cluster cluster = BuildRandomCluster(rng, options);
  EXPECT_EQ(cluster.num_nodes(), 3u);
  EXPECT_EQ(cluster.total_cores(), 18u);
}

TEST(ClusterBuilder, RejectsInvalidOptions) {
  ClusterBuilderOptions options;
  options.num_nodes = 0;
  util::RngStream rng(1);
  EXPECT_THROW((void)BuildRandomCluster(rng, options), std::invalid_argument);

  options = ClusterBuilderOptions{};
  options.min_processors = 3;
  options.max_processors = 2;
  EXPECT_THROW((void)BuildRandomNode(rng, options), std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::cluster
