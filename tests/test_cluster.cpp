#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ecdra::cluster {
namespace {

TEST(Cluster, CountsCoresAcrossNodes) {
  const Cluster cluster({test::SimpleNode(2, 3), test::SimpleNode(1, 4)});
  EXPECT_EQ(cluster.num_nodes(), 2u);
  EXPECT_EQ(cluster.total_cores(), 10u);
  EXPECT_EQ(cluster.node(0).total_cores(), 6u);
  EXPECT_EQ(cluster.node(1).total_cores(), 4u);
}

TEST(Cluster, FlatIndexAndAddressAreInverse) {
  const Cluster cluster(
      {test::SimpleNode(2, 3), test::SimpleNode(1, 4), test::SimpleNode(4, 2)});
  for (std::size_t flat = 0; flat < cluster.total_cores(); ++flat) {
    const CoreAddress address = cluster.Address(flat);
    EXPECT_EQ(cluster.FlatIndex(address), flat);
  }
}

TEST(Cluster, AddressLaysOutProcessorMajor) {
  const Cluster cluster({test::SimpleNode(2, 3)});
  EXPECT_EQ(cluster.Address(0), (CoreAddress{0, 0, 0}));
  EXPECT_EQ(cluster.Address(2), (CoreAddress{0, 0, 2}));
  EXPECT_EQ(cluster.Address(3), (CoreAddress{0, 1, 0}));
  EXPECT_EQ(cluster.Address(5), (CoreAddress{0, 1, 2}));
}

TEST(Cluster, NodeOfMapsFlatIndices) {
  const Cluster cluster({test::SimpleNode(1, 2), test::SimpleNode(1, 3)});
  EXPECT_EQ(cluster.NodeIndexOf(0), 0u);
  EXPECT_EQ(cluster.NodeIndexOf(1), 0u);
  EXPECT_EQ(cluster.NodeIndexOf(2), 1u);
  EXPECT_EQ(cluster.NodeIndexOf(4), 1u);
}

TEST(Cluster, CorePowerReadsProfile) {
  const Cluster cluster({test::SimpleNode()});
  EXPECT_DOUBLE_EQ(cluster.CorePower(0, 0), 100.0);
  EXPECT_LT(cluster.CorePower(0, 4), cluster.CorePower(0, 0));
}

TEST(Cluster, RejectsInvalidConstruction) {
  EXPECT_THROW((void)Cluster({}), std::invalid_argument);

  Node zero_cores = test::SimpleNode();
  zero_cores.num_processors = 0;
  EXPECT_THROW((void)Cluster({zero_cores}), std::invalid_argument);

  Node bad_eff = test::SimpleNode();
  bad_eff.power_efficiency = 0.0;
  EXPECT_THROW((void)Cluster({bad_eff}), std::invalid_argument);
  bad_eff.power_efficiency = 1.5;
  EXPECT_THROW((void)Cluster({bad_eff}), std::invalid_argument);
}

TEST(Cluster, RejectsOutOfRangeIndices) {
  const Cluster cluster({test::SimpleNode(2, 2)});
  EXPECT_THROW((void)cluster.node(1), std::invalid_argument);
  EXPECT_THROW((void)cluster.Address(4), std::invalid_argument);
  EXPECT_THROW((void)cluster.NodeIndexOf(4), std::invalid_argument);
  EXPECT_THROW((void)cluster.FlatIndex(CoreAddress{0, 2, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)cluster.FlatIndex(CoreAddress{0, 0, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)cluster.FlatIndex(CoreAddress{1, 0, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::cluster
