// The econ subsystem (src/econ): the EconModel's value/tier/decay arithmetic,
// attribute stamping onto generated workloads (determinism, per-job tier
// draws, typed bounds diagnostics), the ProfitMeter's accounting, the
// value-density admission policy, the econ-greedy heuristic, the SLA filter,
// the profit-guard governor, and the end-to-end guarantee that metering a
// trial perturbs none of the paper's metrics.
#include "econ/econ_model.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/econ_greedy.hpp"
#include "core/mapping_context.hpp"
#include "core/sla_filter.hpp"
#include "econ/profit_meter.hpp"
#include "governor/governor.hpp"
#include "sim/experiment_runner.hpp"
#include "stream/admission.hpp"
#include "test_support.hpp"
#include "workload/task_type_table.hpp"
#include "workload/type_bounds.hpp"

namespace ecdra {
namespace {

// -- EconModel arithmetic --

TEST(EconModel, DefaultModelIsTrivial) {
  EXPECT_TRUE(econ::EconModel{}.trivial());
}

TEST(EconModel, AnyPricedDimensionMakesItNonTrivial) {
  econ::EconModel values;
  values.type_values = {0.0, 1.0};
  EXPECT_FALSE(values.trivial());

  econ::EconModel price;
  price.energy_price = 0.5;
  EXPECT_FALSE(price.trivial());

  econ::EconModel tiered;
  tiered.tiers = {econ::SlaTier{"gold", 2.0, 1.0, 0.0, 1.0}};
  EXPECT_FALSE(tiered.trivial());
}

TEST(EconModel, AllZeroValuesAndNeutralTiersStayTrivial) {
  // The degenerate configuration the golden fixture depends on: zero
  // values, free energy, and neutral tiers (whatever their mix weights).
  econ::EconModel model;
  model.type_values = {0.0, 0.0, 0.0};
  model.tiers = {econ::SlaTier{"a", 1.0, 1.0, 0.0, 0.7},
                 econ::SlaTier{"b", 1.0, 1.0, 0.0, 0.3}};
  EXPECT_TRUE(model.trivial());
}

TEST(EconModel, ValueForTypeCyclesShortLists) {
  econ::EconModel model;
  model.type_values = {1.0, 10.0};
  EXPECT_DOUBLE_EQ(model.ValueForType(0), 1.0);
  EXPECT_DOUBLE_EQ(model.ValueForType(1), 10.0);
  EXPECT_DOUBLE_EQ(model.ValueForType(2), 1.0);
  EXPECT_DOUBLE_EQ(model.ValueForType(97), 10.0);
}

TEST(EconModel, EmptyValueListPricesEverythingAtZero) {
  EXPECT_DOUBLE_EQ(econ::EconModel{}.ValueForType(42), 0.0);
}

TEST(EconModel, TierOfEmptyListIsTheNeutralTier) {
  const econ::EconModel model;
  EXPECT_EQ(model.TierOf(0), econ::NeutralTier());
  EXPECT_THROW((void)model.TierOf(1), std::invalid_argument);
}

TEST(EconModel, TierOfRejectsOutOfRangeIndices) {
  econ::EconModel model;
  model.tiers = {econ::SlaTier{}, econ::SlaTier{}};
  EXPECT_EQ(&model.TierOf(1), &model.tiers[1]);
  EXPECT_THROW((void)model.TierOf(2), std::invalid_argument);
}

TEST(EconModel, RealizedValueKeepsThePaperHardCutoffWithoutDecay) {
  const econ::EconModel model;  // value_decay = 0
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 100.0 + 1e-9), 0.0);
}

TEST(EconModel, RealizedValueDecaysLinearlyInsideTheWindow) {
  econ::EconModel model;
  model.value_decay = 100.0;
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 125.0), 7.5);
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 150.0), 5.0);
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(model.RealizedValue(10.0, 100.0, 500.0), 0.0);
}

// -- AssignEconAttributes --

TEST(AssignEconAttributes, StampsTierScaledValues) {
  econ::EconModel model;
  model.type_values = {1.0, 10.0};
  model.tiers = {econ::SlaTier{"gold", 3.0, 1.0, 0.0, 1.0}};
  std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 10.0},
                                    workload::Task{1, 1, 0.0, 10.0},
                                    workload::Task{2, 2, 0.0, 10.0}};
  econ::AssignEconAttributes(tasks, model, 3, util::RngStream(1));
  EXPECT_DOUBLE_EQ(tasks[0].value, 3.0);
  EXPECT_DOUBLE_EQ(tasks[1].value, 30.0);
  EXPECT_DOUBLE_EQ(tasks[2].value, 3.0);  // cycled back to type value 1.0
  for (const workload::Task& task : tasks) EXPECT_EQ(task.tier, 0u);
}

TEST(AssignEconAttributes, SingleClassMixDrawsNothing) {
  // One tier (or none) must not consume randomness: the same substream
  // used elsewhere afterwards sees the same draws either way.
  econ::EconModel model;
  model.type_values = {1.0};
  std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 10.0}};
  util::RngStream root(11);
  econ::AssignEconAttributes(tasks, model, 1, root.Substream("econ", 0));
  EXPECT_EQ(tasks[0].tier, 0u);
}

TEST(AssignEconAttributes, TierDrawsAreDeterministicPerSubstream) {
  econ::EconModel model;
  model.type_values = {1.0};
  model.tiers = {econ::SlaTier{"gold", 3.0, 2.0, 0.5, 0.3},
                 econ::SlaTier{"best-effort", 1.0, 1.0, 0.0, 0.7}};
  std::vector<workload::Task> a;
  std::vector<workload::Task> b;
  for (std::size_t i = 0; i < 200; ++i) {
    a.push_back(workload::Task{i, 0, 0.0, 10.0});
    b.push_back(workload::Task{i, 0, 0.0, 10.0});
  }
  econ::AssignEconAttributes(a, model, 1, util::RngStream(7));
  econ::AssignEconAttributes(b, model, 1, util::RngStream(7));
  EXPECT_EQ(a, b);
  // Both tiers actually appear over 200 draws of a 30/70 mix.
  const auto gold = [](const workload::Task& t) { return t.tier == 0; };
  EXPECT_TRUE(std::any_of(a.begin(), a.end(), gold));
  EXPECT_FALSE(std::all_of(a.begin(), a.end(), gold));
}

TEST(AssignEconAttributes, JobMembersShareOneTierDraw) {
  econ::EconModel model;
  model.type_values = {1.0};
  model.tiers = {econ::SlaTier{"gold", 3.0, 2.0, 0.5, 0.5},
                 econ::SlaTier{"best-effort", 1.0, 1.0, 0.0, 0.5}};
  // 40 jobs x 3 stage tasks: an SLA is bought per job, so every member of
  // one job must land in the same tier.
  std::vector<workload::Task> tasks;
  for (std::size_t job = 0; job < 40; ++job) {
    for (std::size_t stage = 0; stage < 3; ++stage) {
      tasks.push_back(
          workload::Task{job * 3 + stage, 0, 0.0, 10.0, 1.0, job, stage});
    }
  }
  econ::AssignEconAttributes(tasks, model, 1, util::RngStream(3));
  for (std::size_t job = 0; job < 40; ++job) {
    EXPECT_EQ(tasks[job * 3 + 1].tier, tasks[job * 3].tier);
    EXPECT_EQ(tasks[job * 3 + 2].tier, tasks[job * 3].tier);
  }
}

TEST(AssignEconAttributes, RejectsTypesTheValueTableCannotPriceByName) {
  econ::EconModel model;
  model.type_values = {1.0};
  std::vector<workload::Task> tasks{workload::Task{0, 7, 0.0, 10.0}};
  try {
    econ::AssignEconAttributes(tasks, model, 5, util::RngStream(1));
    FAIL() << "expected TaskTypeRangeError";
  } catch (const workload::TaskTypeRangeError& error) {
    EXPECT_EQ(error.type(), 7u);
    EXPECT_EQ(error.num_types(), 5u);
    const std::string message = error.what();
    EXPECT_NE(message.find("econ value table"), std::string::npos) << message;
    EXPECT_NE(message.find("type 7"), std::string::npos) << message;
    EXPECT_NE(message.find("5 types"), std::string::npos) << message;
  }
}

// -- ProfitMeter --

TEST(ProfitMeter, AccountsOfferedRevenueAndEnergyBill) {
  econ::EconModel model;
  model.energy_price = 2.0;
  econ::ProfitMeter meter(model);
  const workload::Task paid{0, 0, 0.0, 100.0, 1.0,
                            workload::kSelfJob, 0, 5.0, 0};
  const workload::Task missed{1, 0, 0.0, 100.0, 1.0,
                              workload::kSelfJob, 0, 3.0, 0};
  meter.Offer(paid);
  meter.Offer(missed);
  EXPECT_DOUBLE_EQ(meter.value_offered(), 8.0);

  meter.Finish(paid, 50.0, /*earns=*/true);
  meter.Finish(missed, 150.0, /*earns=*/false);
  EXPECT_DOUBLE_EQ(meter.revenue(), 5.0);
  EXPECT_EQ(meter.paid_finishes(), 1u);
  EXPECT_EQ(meter.decayed_finishes(), 0u);

  meter.Settle(4.0);
  EXPECT_DOUBLE_EQ(meter.energy_cost(), 8.0);
  EXPECT_DOUBLE_EQ(meter.net_profit(), -3.0);
}

TEST(ProfitMeter, LateFinishInsideTheDecayWindowEarnsAFractionAndIsCounted) {
  econ::EconModel model;
  model.value_decay = 100.0;
  econ::ProfitMeter meter(model);
  const workload::Task task{0, 0, 0.0, 100.0, 1.0,
                            workload::kSelfJob, 0, 10.0, 0};
  meter.Offer(task);
  meter.Finish(task, 150.0, /*earns=*/true);
  EXPECT_DOUBLE_EQ(meter.revenue(), 5.0);
  EXPECT_EQ(meter.paid_finishes(), 1u);
  EXPECT_EQ(meter.decayed_finishes(), 1u);
}

TEST(ProfitMeter, EarnsFalseSuppressesRevenueEvenOnTime) {
  // The engine's within-energy verdict gates revenue: an on-time finish
  // past the budget crossing earns nothing, exactly like the paper's
  // completion accounting.
  const econ::EconModel model;
  econ::ProfitMeter meter(model);
  const workload::Task task{0, 0, 0.0, 100.0, 1.0,
                            workload::kSelfJob, 0, 10.0, 0};
  meter.Offer(task);
  meter.Finish(task, 50.0, /*earns=*/false);
  EXPECT_DOUBLE_EQ(meter.revenue(), 0.0);
  EXPECT_EQ(meter.paid_finishes(), 0u);
}

TEST(ProfitMeter, TracksPremiumTierOutcomes) {
  econ::EconModel model;
  model.tiers = {econ::SlaTier{"best-effort", 1.0, 1.0, 0.0, 0.5},
                 econ::SlaTier{"gold", 3.0, 2.0, 0.5, 0.5}};
  econ::ProfitMeter meter(model);
  const workload::Task plain{0, 0, 0.0, 100.0, 1.0,
                             workload::kSelfJob, 0, 1.0, 0};
  const workload::Task gold_hit{1, 0, 0.0, 100.0, 1.0,
                                workload::kSelfJob, 0, 3.0, 1};
  const workload::Task gold_miss{2, 0, 0.0, 100.0, 1.0,
                                 workload::kSelfJob, 0, 3.0, 1};
  meter.Offer(plain);
  meter.Offer(gold_hit);
  meter.Offer(gold_miss);
  EXPECT_EQ(meter.premium_total(), 2u);

  meter.Finish(plain, 50.0, true);
  meter.Finish(gold_hit, 50.0, true);
  meter.Finish(gold_miss, 150.0, true);  // late: not a premium on-time hit
  EXPECT_EQ(meter.premium_on_time(), 1u);
}

// -- value-density admission --

stream::AdmissionView EconView() {
  stream::AdmissionView view;
  view.now = 10.0;
  view.arrival = 10.0;
  view.deadline = 100.0;
  view.best_rho = 0.9;
  view.value = 10.0;
  view.cheapest_energy = 2.0;
  view.energy_price = 1.0;
  return view;
}

TEST(ValueDensityAdmission, AdmitsWhenValueCoversTheCheapestBill) {
  const auto policy = stream::MakeAdmissionPolicy("value-density",
                                                  stream::AdmissionOptions{});
  EXPECT_TRUE(policy->active());
  EXPECT_EQ(policy->Decide(EconView()), stream::AdmissionVerdict::kAdmit);
}

TEST(ValueDensityAdmission, DropsArrivalsAlreadyPastTheirDeadline) {
  const auto policy = stream::MakeAdmissionPolicy("value-density",
                                                  stream::AdmissionOptions{});
  stream::AdmissionView view = EconView();
  view.now = view.deadline;
  EXPECT_EQ(policy->Decide(view), stream::AdmissionVerdict::kDrop);
}

TEST(ValueDensityAdmission, DropsWhenValueCannotCoverTheCheapestBill) {
  const auto policy = stream::MakeAdmissionPolicy("value-density",
                                                  stream::AdmissionOptions{});
  stream::AdmissionView view = EconView();
  view.value = 1.5;  // bill = 2.0: running it loses money even on time
  EXPECT_EQ(policy->Decide(view), stream::AdmissionVerdict::kDrop);
}

TEST(ValueDensityAdmission, DefersWhenExpectedValueFallsShort) {
  const auto policy = stream::MakeAdmissionPolicy("value-density",
                                                  stream::AdmissionOptions{});
  stream::AdmissionView view = EconView();
  view.value = 3.0;
  view.best_rho = 0.5;  // expected 1.5 < bill 2.0, but on-time would pay
  EXPECT_EQ(policy->Decide(view), stream::AdmissionVerdict::kDefer);
}

TEST(ValueDensityAdmission, FairnessGuardForcesLongWaiters) {
  stream::AdmissionOptions options;
  options.fairness_wait = 20.0;
  const auto policy = stream::MakeAdmissionPolicy("value-density", options);
  stream::AdmissionView view = EconView();
  view.value = 1.5;  // would be dropped...
  view.now = view.arrival + 20.0;  // ...but has waited out the guard
  EXPECT_EQ(policy->Decide(view), stream::AdmissionVerdict::kAdmitForced);
}

TEST(ValueDensityAdmission, ZeroEconDefaultsAdmitEverything) {
  // Outside econ mode the view's value/price/cheapest-energy stay at their
  // zero defaults, and the rule must be vacuous (admit) — never dropping
  // tasks of a run that priced nothing.
  const auto policy = stream::MakeAdmissionPolicy("value-density",
                                                  stream::AdmissionOptions{});
  stream::AdmissionView view;
  view.deadline = 100.0;
  view.best_rho = 0.4;
  EXPECT_EQ(policy->Decide(view), stream::AdmissionVerdict::kAdmit);
}

// -- econ-greedy heuristic and SLA filter (shared fixture) --

class EconMappingTest : public ::testing::Test {
 protected:
  EconMappingTest()
      : cluster_({test::SimpleNode(1, 1, 1.0), test::SimpleNode(2, 1, 0.5)}),
        etc_(1, 2, {100.0, 150.0}),
        table_(cluster_, etc_, 0.25),
        cores_(cluster_.total_cores()) {}

  [[nodiscard]] core::MappingContext Context(double deadline) {
    task_ = workload::Task{0, 0, 0.0, deadline};
    return core::MappingContext(cluster_, table_, cores_, task_, 0.0);
  }

  cluster::Cluster cluster_;
  workload::EtcMatrix etc_;
  workload::TaskTypeTable table_;
  std::vector<robustness::CoreQueueModel> cores_;
  workload::Task task_;
};

TEST_F(EconMappingTest, EconGreedyWithoutAModelPicksTheCheapestCandidate) {
  core::EconGreedyHeuristic heuristic;
  core::MappingContext ctx = Context(400.0);
  const auto chosen = heuristic.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  const auto cheapest = std::min_element(
      ctx.candidates().begin(), ctx.candidates().end(),
      [](const core::Candidate& a, const core::Candidate& b) {
        return a.eec < b.eec;
      });
  EXPECT_DOUBLE_EQ(chosen->eec, cheapest->eec);
}

TEST_F(EconMappingTest, EconGreedyMaximizesProfitDensity) {
  econ::EconModel model;
  model.type_values = {1.0};
  model.energy_price = 0.001;
  core::EconGreedyHeuristic heuristic;
  core::MappingContext ctx = Context(400.0);
  ctx.SetEconView(&model);
  task_.value = 5.0;
  const auto chosen = heuristic.Select(ctx);
  ASSERT_TRUE(chosen.has_value());
  // The winner's (value * rho - price * EEC) / EEC must top every candidate.
  const double eec = std::max(chosen->eec, 1e-12);
  const double best = (task_.value * ctx.OnTimeProbability(*chosen) -
                       model.energy_price * eec) /
                      eec;
  for (const core::Candidate& candidate : ctx.candidates()) {
    const double e = std::max(candidate.eec, 1e-12);
    const double score =
        (task_.value * ctx.OnTimeProbability(candidate) -
         model.energy_price * e) /
        e;
    EXPECT_GE(best, score);
  }
}

TEST_F(EconMappingTest, EconGreedyReturnsNulloptOnEmptyCandidates) {
  core::EconGreedyHeuristic heuristic;
  core::MappingContext ctx = Context(400.0);
  ctx.candidates().clear();
  EXPECT_FALSE(heuristic.Select(ctx).has_value());
}

TEST_F(EconMappingTest, SlaFilterIsANoOpOutsideEconMode) {
  core::SlaFilter filter;
  core::MappingContext ctx = Context(150.0);
  const std::size_t before = ctx.candidates().size();
  filter.Apply(ctx);
  EXPECT_EQ(ctx.candidates().size(), before);
}

TEST_F(EconMappingTest, SlaFilterIsANoOpForZeroFloorTiers) {
  econ::EconModel model;
  model.type_values = {1.0};  // non-trivial, but the tier demands nothing
  core::SlaFilter filter;
  core::MappingContext ctx = Context(150.0);
  ctx.SetEconView(&model);
  const std::size_t before = ctx.candidates().size();
  filter.Apply(ctx);
  EXPECT_EQ(ctx.candidates().size(), before);
}

TEST_F(EconMappingTest, SlaFilterPrunesCandidatesBelowTheTierRhoFloor) {
  econ::EconModel model;
  model.tiers = {econ::SlaTier{"gold", 1.0, 1.0, 0.8, 1.0}};
  core::SlaFilter filter;
  // Deadline 150: node 0 at P0 (mean 100) clears 0.8 comfortably; node 1
  // at P0 (mean 150) sits near rho 0.5 and every deeper state is worse.
  core::MappingContext ctx = Context(150.0);
  ctx.SetEconView(&model);
  const std::size_t before = ctx.candidates().size();
  filter.Apply(ctx);
  ASSERT_FALSE(ctx.candidates().empty());
  EXPECT_LT(ctx.candidates().size(), before);
  for (const core::Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(ctx.OnTimeProbability(candidate), 0.8);
  }
}

// -- profit-guard governor --

class RecordingHost final : public governor::GovernorHost {
 public:
  void SetPStateFloor(std::size_t flat_core,
                      cluster::PStateIndex floor) override {
    floors.emplace_back(flat_core, floor);
  }
  bool ParkIdleCore(std::size_t flat_core) override {
    parked.push_back(flat_core);
    return true;
  }
  void SetFairShareScale(double scale) override { scales.push_back(scale); }

  std::vector<std::pair<std::size_t, cluster::PStateIndex>> floors;
  std::vector<std::size_t> parked;
  std::vector<double> scales;
};

governor::GovernorObservation ProfitObservation(
    const std::vector<governor::CoreView>& cores) {
  governor::GovernorObservation obs;
  obs.now = 500.0;
  obs.consumed = 100.0;
  obs.budget = 1000.0;
  obs.cores = cores;
  return obs;
}

TEST(ProfitGuardGovernor, DeclaresCompletionAndTickCadence) {
  const auto gov = governor::MakeGovernor("profit-guard");
  EXPECT_TRUE(gov->cadence().on_completion);
  EXPECT_GT(gov->cadence().tick_period, 0.0);
}

TEST(ProfitGuardGovernor, StaysInertWithoutAnEnergyPrice) {
  const auto gov = governor::MakeGovernor("profit-guard");
  const std::vector<governor::CoreView> cores(2);
  RecordingHost host;
  gov->Govern(ProfitObservation(cores), host);  // energy_price = 0
  EXPECT_TRUE(host.floors.empty());
  EXPECT_TRUE(host.parked.empty());
}

TEST(ProfitGuardGovernor, RunsUncappedWhileTheMarginIsPositive) {
  const auto gov = governor::MakeGovernor("profit-guard");
  const std::vector<governor::CoreView> cores(3);
  governor::GovernorObservation obs = ProfitObservation(cores);
  obs.energy_price = 1.0;                // bill = 100
  obs.realized_revenue = 150.0;          // ratio 1.5 >= 1
  RecordingHost host;
  gov->Govern(obs, host);
  ASSERT_EQ(host.floors.size(), 3u);
  for (const auto& [core, floor] : host.floors) EXPECT_EQ(floor, 0u);
  EXPECT_TRUE(host.parked.empty());
}

TEST(ProfitGuardGovernor, DeepensTheFloorAndParksIdleCoresUnderLoss) {
  const auto gov = governor::MakeGovernor("profit-guard");
  std::vector<governor::CoreView> cores(3);
  cores[1].busy = true;
  cores[2].parked = true;
  governor::GovernorObservation obs = ProfitObservation(cores);
  obs.energy_price = 1.0;                // bill = 100
  obs.realized_revenue = 40.0;           // ratio 0.4: two bands under water
  RecordingHost host;
  gov->Govern(obs, host);
  ASSERT_EQ(host.floors.size(), 3u);
  // floor((1 - 0.4) / 0.25) + 1 = 3 bands of slowdown on every core.
  for (const auto& [core, floor] : host.floors) EXPECT_EQ(floor, 3u);
  // Only the idle, unparked core 0 is parked.
  EXPECT_EQ(host.parked, std::vector<std::size_t>{0});
}

TEST(ProfitGuardGovernor, FloorClampsToTheDeepestPState) {
  const auto gov = governor::MakeGovernor("profit-guard");
  const std::vector<governor::CoreView> cores(1);
  governor::GovernorObservation obs = ProfitObservation(cores);
  obs.energy_price = 1.0;
  obs.realized_revenue = 0.0;  // ratio 0: maximally under water
  RecordingHost host;
  gov->Govern(obs, host);
  ASSERT_EQ(host.floors.size(), 1u);
  EXPECT_EQ(host.floors[0].second, cluster::kNumPStates - 1);
}

// -- end-to-end: metering must not perturb the paper's metrics --

sim::SetupOptions EconSmallOptions() {
  sim::SetupOptions options;
  options.cluster.num_nodes = 3;
  options.cvb.num_task_types = 10;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(15, 30, 1.0 / 8.0, 1.0 / 48.0);
  return options;
}

const sim::ExperimentSetup& EconSmallSetup() {
  static const sim::ExperimentSetup setup =
      sim::BuildExperimentSetup(7, EconSmallOptions());
  return setup;
}

TEST(EconTrial, MeteringLeavesThePaperMetricsUntouched) {
  // Attaching a non-trivial model to a run whose policies are value-blind
  // (LL + en+rob, no admission, static governor) adds profit accounting and
  // nothing else: every paper metric of the trial is bit-identical.
  sim::RunOptions base;
  const sim::TrialResult plain =
      sim::RunSingleTrial(EconSmallSetup(), "LL", "en+rob", 0, base);

  sim::RunOptions econ_run;
  econ_run.econ_enabled = true;
  econ_run.econ.type_values = {1.0, 4.0};
  econ_run.econ.energy_price = 1e-6;
  const sim::TrialResult metered =
      sim::RunSingleTrial(EconSmallSetup(), "LL", "en+rob", 0, econ_run);

  EXPECT_TRUE(metered.econ.enabled);
  EXPECT_GT(metered.econ.value_offered, 0.0);
  EXPECT_GE(metered.econ.revenue, 0.0);
  EXPECT_DOUBLE_EQ(metered.econ.net_profit,
                   metered.econ.revenue - metered.econ.energy_cost);

  EXPECT_FALSE(plain.econ.enabled);
  EXPECT_EQ(plain.missed_deadlines, metered.missed_deadlines);
  EXPECT_EQ(plain.completed, metered.completed);
  EXPECT_EQ(plain.discarded, metered.discarded);
  EXPECT_DOUBLE_EQ(plain.total_energy, metered.total_energy);
}

TEST(EconTrial, TrivialModelBehavesExactlyLikeEconOff) {
  sim::RunOptions trivial_run;
  trivial_run.econ_enabled = true;
  trivial_run.econ.type_values = {0.0, 0.0};  // trivial: never attached
  const sim::TrialResult result =
      sim::RunSingleTrial(EconSmallSetup(), "LL", "en+rob", 0, trivial_run);
  EXPECT_FALSE(result.econ.enabled);
  EXPECT_DOUBLE_EQ(result.econ.value_offered, 0.0);
}

TEST(EconTrial, ProfitAccountingIsDeterministic) {
  sim::RunOptions run;
  run.econ_enabled = true;
  run.econ.type_values = {1.0, 4.0};
  run.econ.energy_price = 1e-6;
  run.econ.tiers = {econ::SlaTier{"gold", 3.0, 2.0, 0.0, 0.3},
                    econ::SlaTier{"best-effort", 1.0, 1.0, 0.0, 0.7}};
  const sim::TrialResult a =
      sim::RunSingleTrial(EconSmallSetup(), "MECT", "en+rob", 1, run);
  const sim::TrialResult b =
      sim::RunSingleTrial(EconSmallSetup(), "MECT", "en+rob", 1, run);
  EXPECT_EQ(a.econ, b.econ);
  EXPECT_GT(a.econ.premium_total, 0u);
}

TEST(EconTrial, EconGreedyIsUsableAsAGridHeuristic) {
  sim::RunOptions run;
  run.econ_enabled = true;
  run.econ.type_values = {1.0, 4.0};
  run.econ.energy_price = 1e-6;
  const sim::TrialResult result =
      sim::RunSingleTrial(EconSmallSetup(), "econ-greedy", "en+rob", 0, run);
  EXPECT_TRUE(result.econ.enabled);
  EXPECT_GT(result.completed, 0u);
}

}  // namespace
}  // namespace ecdra
