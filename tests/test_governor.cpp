// The governor subsystem (src/governor): registry resolution, the inert
// "static" baseline, each built-in control loop's observable actions
// (counters + JSONL trace), the host's action semantics (park refusal,
// no-op dedup), custom cadences through ECDRA_REGISTER_GOVERNOR, and the
// fair-share-scale plumbing into the energy filter.
#include "governor/governor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment_runner.hpp"

namespace ecdra {
namespace {

sim::SetupOptions SmallOptions() {
  sim::SetupOptions options;
  options.cluster.num_nodes = 3;
  options.cvb.num_task_types = 10;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(15, 30, 1.0 / 8.0, 1.0 / 48.0);
  return options;
}

const sim::ExperimentSetup& SmallSetup() {
  static const sim::ExperimentSetup setup =
      sim::BuildExperimentSetup(7, SmallOptions());
  return setup;
}

sim::TrialResult RunWithGovernor(const std::string& governor,
                                 obs::TraceSink* sink = nullptr) {
  sim::RunOptions options;
  options.collect_counters = true;
  options.governor = governor;
  options.trace_sink = sink;
  return sim::RunSingleTrial(SmallSetup(), "LL", "en+rob", 0, options);
}

TEST(GovernorRegistry, BuiltInsAreRegistered) {
  const std::vector<std::string> names = governor::GovernorNames();
  for (const std::string expected :
       {"static", "race-to-idle", "budget-feedback", "deadline-aware"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing built-in governor " << expected;
  }
}

TEST(GovernorRegistry, UnknownNameThrowsListingTheRegistry) {
  try {
    (void)governor::MakeGovernor("no-such-governor");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-governor"), std::string::npos) << message;
    EXPECT_NE(message.find("static"), std::string::npos) << message;
  }
}

TEST(Governor, StaticDeclaresNoCadenceAndStaysInert) {
  const std::unique_ptr<governor::Governor> gov =
      governor::MakeGovernor("static");
  EXPECT_FALSE(gov->cadence().any());

  const sim::TrialResult result = RunWithGovernor("static");
  EXPECT_EQ(result.counters.governor_invocations, 0u);
  EXPECT_EQ(result.counters.governor_pstate_caps, 0u);
  EXPECT_EQ(result.counters.governor_cores_parked, 0u);
  EXPECT_EQ(result.counters.governor_allowance_changes, 0u);
}

TEST(Governor, StaticIsBitIdenticalToTheDefaultTrial) {
  // RunOptions.governor defaults to "static"; spelling it out must not
  // perturb a single byte of the result (the golden paper-grid fixture
  // proves the same against the pre-governor build at paper scale).
  sim::RunOptions options;
  options.collect_counters = true;
  sim::TrialResult base =
      sim::RunSingleTrial(SmallSetup(), "LL", "en+rob", 0, options);
  sim::TrialResult explicit_static = RunWithGovernor("static");
  // decision_seconds is the one wall-clock (non-deterministic) counter.
  base.counters.decision_seconds = 0.0;
  explicit_static.counters.decision_seconds = 0.0;
  EXPECT_EQ(sim::TrialResultToJson(base),
            sim::TrialResultToJson(explicit_static));
}

TEST(Governor, RaceToIdleParksIdleCoresAndChangesEnergy) {
  const sim::TrialResult base = RunWithGovernor("static");
  const sim::TrialResult raced = RunWithGovernor("race-to-idle");
  EXPECT_GT(raced.counters.governor_invocations, 0u);
  EXPECT_GT(raced.counters.governor_cores_parked, 0u);
  EXPECT_EQ(raced.counters.governor_pstate_caps, 0u);
  // Parking goes through the ordinary SwitchPState path, so the nu lists
  // record more transitions and idle draw disappears from Eq. 1/2.
  EXPECT_GT(raced.counters.pstate_switches, base.counters.pstate_switches);
  EXPECT_LT(raced.total_energy, base.total_energy);
}

TEST(Governor, RaceToIdleDegradesToNoOpUnderPowerGatedIdle) {
  // Under IdlePolicy::kPowerGated an idle core already draws nothing, so
  // ParkIdleCore refuses every request and the counter stays zero.
  sim::RunOptions options;
  options.collect_counters = true;
  options.governor = "race-to-idle";
  options.idle_policy = sim::IdlePolicy::kPowerGated;
  const sim::TrialResult result =
      sim::RunSingleTrial(SmallSetup(), "LL", "en+rob", 0, options);
  EXPECT_GT(result.counters.governor_invocations, 0u);
  EXPECT_EQ(result.counters.governor_cores_parked, 0u);
}

TEST(Governor, BudgetFeedbackActsAndTracesItsActions) {
  std::ostringstream trace_text;
  obs::JsonlTraceSink sink(trace_text);
  const sim::TrialResult result = RunWithGovernor("budget-feedback", &sink);
  EXPECT_GT(result.counters.governor_invocations, 0u);
  EXPECT_GT(result.counters.governor_allowance_changes, 0u);

  // Every counted action appears as one {"event":"governor"} JSONL record
  // whose action-specific fields parse back.
  std::uint64_t caps = 0;
  std::uint64_t parks = 0;
  std::uint64_t allowances = 0;
  std::istringstream lines(trace_text.str());
  std::string line;
  while (std::getline(lines, line)) {
    const auto value = obs::json::Parse(line);
    ASSERT_TRUE(value.has_value()) << "unparseable trace line: " << line;
    const auto* event = value->Find("event");
    ASSERT_NE(event, nullptr);
    if (event->AsString() != "governor") continue;
    EXPECT_EQ(value->Find("governor")->AsString(), "budget-feedback");
    const std::string action = value->Find("action")->AsString();
    if (action == "cap") {
      ++caps;
      EXPECT_NE(value->Find("core"), nullptr);
      EXPECT_NE(value->Find("pstate_floor"), nullptr);
    } else if (action == "park") {
      ++parks;
      EXPECT_NE(value->Find("core"), nullptr);
    } else if (action == "allowance") {
      ++allowances;
      EXPECT_GT(value->Find("scale")->AsNumber(), 0.0);
    } else {
      FAIL() << "unknown governor action " << action;
    }
  }
  EXPECT_EQ(caps, result.counters.governor_pstate_caps);
  EXPECT_EQ(parks, result.counters.governor_cores_parked);
  EXPECT_EQ(allowances, result.counters.governor_allowance_changes);
}

TEST(Governor, DeadlineAwareCapsOnlyWhenSlackTolerates) {
  const sim::TrialResult result = RunWithGovernor("deadline-aware");
  EXPECT_GT(result.counters.governor_invocations, 0u);
  // The slack-gated controller caps P-states but never parks or touches
  // the fair share.
  EXPECT_EQ(result.counters.governor_cores_parked, 0u);
  EXPECT_EQ(result.counters.governor_allowance_changes, 0u);
}

// -- Custom governors through the public registration macro --

/// Ticks every 50 time units and records what the host reports back.
class ProbeGovernor final : public governor::Governor {
 public:
  static inline std::uint64_t invocations = 0;
  static inline std::uint64_t park_accepted = 0;
  static inline std::uint64_t park_refused = 0;
  static inline bool observation_ok = true;

  [[nodiscard]] std::string_view name() const override { return "test-probe"; }
  [[nodiscard]] governor::GovernorCadence cadence() const override {
    return governor::GovernorCadence{.tick_period = 50.0};
  }

  void Govern(const governor::GovernorObservation& observation,
              governor::GovernorHost& host) override {
    ++invocations;
    observation_ok = observation_ok && observation.budget > 0.0 &&
                     observation.consumed >= 0.0 &&
                     observation.cluster != nullptr &&
                     observation.cores.size() == observation.queues.size() &&
                     !observation.cores.empty();
    // Park every idle core twice: the second request must be refused (the
    // core is already parked), exercising the host's no-op dedup.
    for (std::size_t flat = 0; flat < observation.cores.size(); ++flat) {
      if (observation.cores[flat].busy || observation.cores[flat].parked) {
        continue;
      }
      if (host.ParkIdleCore(flat)) {
        ++park_accepted;
        host.ParkIdleCore(flat) ? ++park_accepted : ++park_refused;
      }
    }
    // Unchanged re-caps and re-scales must not count as actions.
    host.SetPStateFloor(0, 0);
    host.SetFairShareScale(1.0);
  }

  static void Reset() {
    invocations = 0;
    park_accepted = 0;
    park_refused = 0;
    observation_ok = true;
  }
};

ECDRA_REGISTER_GOVERNOR("test-probe",
                        [] { return std::make_unique<ProbeGovernor>(); });

TEST(Governor, TickCadenceInvokesOncePerPeriodWhileWorkRemains) {
  ProbeGovernor::Reset();
  const sim::TrialResult result = RunWithGovernor("test-probe");
  EXPECT_EQ(result.counters.governor_invocations, ProbeGovernor::invocations);
  EXPECT_GT(ProbeGovernor::invocations, 1u);
  EXPECT_TRUE(ProbeGovernor::observation_ok);
  // Ticks stop once all arrivals and active tasks resolve, so the tick
  // count is bounded by makespan / period (+1 for the first tick).
  EXPECT_LE(ProbeGovernor::invocations,
            static_cast<std::uint64_t>(result.makespan / 50.0) + 1);
}

TEST(Governor, HostRefusesDoublePark) {
  ProbeGovernor::Reset();
  const sim::TrialResult result = RunWithGovernor("test-probe");
  EXPECT_GT(ProbeGovernor::park_accepted, 0u);
  EXPECT_EQ(ProbeGovernor::park_refused, ProbeGovernor::park_accepted);
  EXPECT_EQ(result.counters.governor_cores_parked,
            ProbeGovernor::park_accepted);
}

TEST(Governor, UnchangedActionsAreNotCounted) {
  ProbeGovernor::Reset();
  const sim::TrialResult result = RunWithGovernor("test-probe");
  // SetPStateFloor(0, 0) and SetFairShareScale(1.0) on every tick match
  // the current state, so the cap/allowance counters stay zero.
  EXPECT_EQ(result.counters.governor_pstate_caps, 0u);
  EXPECT_EQ(result.counters.governor_allowance_changes, 0u);
}

/// Halves the fair share once; everything else untouched.
class TightenGovernor final : public governor::Governor {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "test-tighten";
  }
  [[nodiscard]] governor::GovernorCadence cadence() const override {
    return governor::GovernorCadence{.on_assignment = true};
  }
  void Govern(const governor::GovernorObservation&,
              governor::GovernorHost& host) override {
    host.SetFairShareScale(0.5);
  }
};

ECDRA_REGISTER_GOVERNOR("test-tighten",
                        [] { return std::make_unique<TightenGovernor>(); });

TEST(Governor, FairShareScaleTightensTheEnergyFilter) {
  // The default small setup's budget is generous enough that the energy
  // filter never prunes; shrink it so the fair share actually binds.
  sim::SetupOptions tight = SmallOptions();
  tight.budget_task_count = 25.0;
  const sim::ExperimentSetup setup = sim::BuildExperimentSetup(7, tight);
  sim::RunOptions options;
  options.collect_counters = true;
  const sim::TrialResult base =
      sim::RunSingleTrial(setup, "LL", "en+rob", 0, options);
  options.governor = "test-tighten";
  const sim::TrialResult tightened =
      sim::RunSingleTrial(setup, "LL", "en+rob", 0, options);
  // Halving every task's allowance makes the energy filter strictly more
  // aggressive: it can only prune more candidates, and the scale change is
  // counted exactly once (0.5 is set on the first invocation, then no-ops).
  EXPECT_EQ(tightened.counters.governor_allowance_changes, 1u);
  EXPECT_GT(tightened.counters.pruned_energy, base.counters.pruned_energy);
}

TEST(Governor, EngineRejectsUnknownGovernorName) {
  sim::RunOptions options;
  options.governor = "no-such-governor";
  EXPECT_THROW((void)sim::RunSingleTrial(SmallSetup(), "LL", "en+rob", 0,
                                         options),
               std::invalid_argument);
}

TEST(Governor, GovernorFieldReachesTheCheckpointFingerprint) {
  sim::RunOptions base;
  sim::RunOptions raced = base;
  raced.governor = "race-to-idle";
  EXPECT_NE(sim::ConfigFingerprint(SmallSetup(), base),
            sim::ConfigFingerprint(SmallSetup(), raced));
}

}  // namespace
}  // namespace ecdra
