#include <gtest/gtest.h>

#include "core/energy_filter.hpp"
#include "core/factory.hpp"
#include "core/mapping_context.hpp"
#include "core/robustness_filter.hpp"
#include "test_support.hpp"
#include "workload/task_type_table.hpp"

namespace ecdra::core {
namespace {

class FilterTest : public ::testing::Test {
 protected:
  FilterTest()
      : cluster_({test::SimpleNode(1, 1, 1.0), test::SimpleNode(2, 1, 0.5)}),
        etc_(1, 2, {100.0, 150.0}),
        table_(cluster_, etc_, 0.25),
        cores_(cluster_.total_cores()) {}

  [[nodiscard]] MappingContext Context(double remaining_energy,
                                       std::size_t tasks_left,
                                       double now = 0.0) {
    MappingContext ctx(cluster_, table_, cores_, task_, now);
    ctx.SetBudgetView(remaining_energy, tasks_left);
    return ctx;
  }

  cluster::Cluster cluster_;
  workload::EtcMatrix etc_;
  workload::TaskTypeTable table_;
  std::vector<robustness::CoreQueueModel> cores_;
  workload::Task task_{0, 0, 0.0, 400.0};
};

TEST_F(FilterTest, EnergyFilterMultiplierBands) {
  const EnergyFilter filter;
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(0.0), 0.8);
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(0.79), 0.8);
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(0.8), 1.0);
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(1.0), 1.0);
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(1.2), 1.0);
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(1.21), 1.2);
  EXPECT_DOUBLE_EQ(filter.MultiplierFor(5.0), 1.2);
}

TEST_F(FilterTest, EnergyFilterKeepsOnlyFairShareCandidates) {
  EnergyFilter filter;
  // Idle system: zeta_mul = 0.8; fair share = 0.8 * remaining / tasks_left.
  const double remaining = 1e5;
  const std::size_t tasks_left = 10;
  const double fair = 0.8 * remaining / 10.0;
  MappingContext ctx = Context(remaining, tasks_left);
  const std::vector<Candidate> before = ctx.candidates();
  filter.Apply(ctx);
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_LE(candidate.eec, fair);
  }
  // Every removed candidate must genuinely exceed the fair share.
  std::size_t over = 0;
  for (const Candidate& candidate : before) {
    if (candidate.eec > fair) ++over;
  }
  EXPECT_EQ(before.size() - ctx.candidates().size(), over);
  EXPECT_FALSE(ctx.candidates().empty());
}

TEST_F(FilterTest, EnergyFilterEliminatesEverythingWhenBudgetGone) {
  EnergyFilter filter;
  MappingContext ctx = Context(0.0, 10);
  filter.Apply(ctx);
  EXPECT_TRUE(ctx.candidates().empty());
  MappingContext negative = Context(-5000.0, 10);
  filter.Apply(negative);
  EXPECT_TRUE(negative.candidates().empty());
}

TEST_F(FilterTest, EnergyFilterLoosensDuringCongestion) {
  // Same budget: a congested system (zeta_mul = 1.2) admits candidates an
  // idle system (zeta_mul = 0.8) rejects.
  const double remaining = 1e5;
  MappingContext idle_ctx = Context(remaining, 10);
  EnergyFilter filter;
  filter.Apply(idle_ctx);
  const std::size_t idle_count = idle_ctx.candidates().size();

  // Congest: 2 tasks in flight per core.
  std::deque<pmf::Pmf> execs;
  for (auto& core : cores_) {
    execs.push_back(pmf::Pmf::Delta(500.0));
    core.StartTask(robustness::ModeledTask{99, &execs.back(), 1e9}, 0.0);
    execs.push_back(pmf::Pmf::Delta(500.0));
    core.Enqueue(robustness::ModeledTask{100, &execs.back(), 1e9});
  }
  MappingContext busy_ctx = Context(remaining, 10);
  EXPECT_DOUBLE_EQ(busy_ctx.AverageQueueDepth(), 2.0);
  filter.Apply(busy_ctx);
  EXPECT_GE(busy_ctx.candidates().size(), idle_count);
}

TEST_F(FilterTest, RobustnessFilterDropsBelowThreshold) {
  RobustnessFilter filter(0.5);
  task_.deadline = 130.0;  // tight: slow P-states become hopeless
  MappingContext ctx = Context(1e12, 10);
  const std::size_t before = ctx.candidates().size();
  filter.Apply(ctx);
  EXPECT_LT(ctx.candidates().size(), before);
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(ctx.OnTimeProbability(candidate), 0.5);
  }
}

TEST_F(FilterTest, RobustnessFilterKeepsEverythingWhenDeadlineLoose) {
  RobustnessFilter filter(0.5);
  task_.deadline = 1e6;
  MappingContext ctx = Context(1e12, 10);
  const std::size_t before = ctx.candidates().size();
  filter.Apply(ctx);
  EXPECT_EQ(ctx.candidates().size(), before);
}

TEST_F(FilterTest, RobustnessFilterAtThresholdOneDropsUncertain) {
  RobustnessFilter filter(1.0);
  task_.deadline = 130.0;
  MappingContext ctx = Context(1e12, 10);
  filter.Apply(ctx);
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_DOUBLE_EQ(ctx.OnTimeProbability(candidate), 1.0);
  }
}

TEST_F(FilterTest, RobustnessFilterRejectsInvalidThreshold) {
  EXPECT_THROW((void)RobustnessFilter(-0.1), std::invalid_argument);
  EXPECT_THROW((void)RobustnessFilter(1.1), std::invalid_argument);
}

TEST_F(FilterTest, FactoryBuildsTheFourVariants) {
  EXPECT_TRUE(MakeFilterChain("none").empty());
  const auto en = MakeFilterChain("en");
  ASSERT_EQ(en.size(), 1u);
  EXPECT_EQ(en[0]->name(), "en");
  const auto rob = MakeFilterChain("rob");
  ASSERT_EQ(rob.size(), 1u);
  EXPECT_EQ(rob[0]->name(), "rob");
  const auto both = MakeFilterChain("en+rob");
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0]->name(), "en");
  EXPECT_EQ(both[1]->name(), "rob");
  EXPECT_THROW((void)MakeFilterChain("bogus"), std::invalid_argument);
}

TEST_F(FilterTest, FiltersComposeToIntersection) {
  task_.deadline = 300.0;
  MappingContext both_ctx = Context(1e5, 10);
  for (const auto& filter : MakeFilterChain("en+rob")) {
    filter->Apply(both_ctx);
  }
  MappingContext en_ctx = Context(1e5, 10);
  MakeFilterChain("en")[0]->Apply(en_ctx);
  MappingContext rob_ctx = Context(1e5, 10);
  MakeFilterChain("rob")[0]->Apply(rob_ctx);

  // Every candidate surviving both filters survives each individually.
  for (const Candidate& candidate : both_ctx.candidates()) {
    const auto matches = [&candidate](const Candidate& other) {
      return other.assignment == candidate.assignment;
    };
    EXPECT_TRUE(std::any_of(en_ctx.candidates().begin(),
                            en_ctx.candidates().end(), matches));
    EXPECT_TRUE(std::any_of(rob_ctx.candidates().begin(),
                            rob_ctx.candidates().end(), matches));
  }
}

TEST_F(FilterTest, CustomFilterChainOptionsPropagate) {
  FilterChainOptions options;
  options.robustness_threshold = 0.95;
  task_.deadline = 140.0;
  const auto chain = MakeFilterChain("rob", options);
  MappingContext ctx = Context(1e12, 10);
  chain[0]->Apply(ctx);
  for (const Candidate& candidate : ctx.candidates()) {
    EXPECT_GE(ctx.OnTimeProbability(candidate), 0.95);
  }
}

}  // namespace
}  // namespace ecdra::core
