#include "workload/task_type_table.hpp"

#include <string>

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "workload/type_bounds.hpp"

namespace ecdra::workload {
namespace {

class TaskTypeTableTest : public ::testing::Test {
 protected:
  TaskTypeTableTest()
      : cluster_({test::SimpleNode(1, 1), test::SimpleNode(2, 1)}),
        etc_(2, 2, {100.0, 200.0, 300.0, 400.0}),
        table_(cluster_, etc_, 0.25) {}

  cluster::Cluster cluster_;
  EtcMatrix etc_;
  TaskTypeTable table_;
};

TEST_F(TaskTypeTableTest, BasePStateMeanMatchesEtc) {
  EXPECT_NEAR(table_.MeanExec(0, 0, 0), 100.0, 1e-9);
  EXPECT_NEAR(table_.MeanExec(0, 1, 0), 200.0, 1e-9);
  EXPECT_NEAR(table_.MeanExec(1, 0, 0), 300.0, 1e-9);
  EXPECT_NEAR(table_.MeanExec(1, 1, 0), 400.0, 1e-9);
}

TEST_F(TaskTypeTableTest, PStatesScaleByTimeMultiplier) {
  for (std::size_t type = 0; type < 2; ++type) {
    for (std::size_t node = 0; node < 2; ++node) {
      for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
        const double multiplier =
            cluster_.node(node).pstates[s].time_multiplier;
        EXPECT_NEAR(table_.MeanExec(type, node, s),
                    etc_.at(type, node) * multiplier, 1e-9);
      }
    }
  }
}

TEST_F(TaskTypeTableTest, ExecPmfMeanEqualsMeanExec) {
  for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
    EXPECT_NEAR(table_.ExecPmf(1, 0, s).Expectation(),
                table_.MeanExec(1, 0, s), 1e-9);
  }
}

TEST_F(TaskTypeTableTest, TypeMeanAveragesNodesAndPStates) {
  // Sum of multipliers for the test profile: 1/f for f in {1,.8,.64,.512,.4096}
  double multiplier_sum = 0.0;
  for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
    multiplier_sum += cluster_.node(0).pstates[s].time_multiplier;
  }
  const double expected =
      (100.0 + 200.0) * multiplier_sum / (2.0 * cluster::kNumPStates);
  EXPECT_NEAR(table_.TypeMeanOverAll(0), expected, 1e-9);
}

TEST_F(TaskTypeTableTest, GrandMeanAveragesTypes) {
  EXPECT_NEAR(table_.GrandMeanExec(),
              0.5 * (table_.TypeMeanOverAll(0) + table_.TypeMeanOverAll(1)),
              1e-9);
}

TEST_F(TaskTypeTableTest, PmfsHaveRequestedCov) {
  const pmf::Pmf& pmf = table_.ExecPmf(0, 0, 0);
  const double cov = std::sqrt(pmf.Variance()) / pmf.Expectation();
  EXPECT_NEAR(cov, 0.25, 0.05);
}

TEST_F(TaskTypeTableTest, SlowerPStateShiftsWholeSupport) {
  const pmf::Pmf& fast = table_.ExecPmf(0, 0, 0);
  const pmf::Pmf& slow = table_.ExecPmf(0, 0, 4);
  EXPECT_GT(slow.Min(), fast.Min());
  EXPECT_GT(slow.Max(), fast.Max());
}

TEST_F(TaskTypeTableTest, RejectsOutOfRange) {
  EXPECT_THROW((void)table_.ExecPmf(2, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)table_.ExecPmf(0, 2, 0), std::invalid_argument);
  EXPECT_THROW((void)table_.ExecPmf(0, 0, 5), std::invalid_argument);
  EXPECT_THROW((void)table_.TypeMeanOverAll(2), std::invalid_argument);
}

TEST_F(TaskTypeTableTest, OutOfRangeTypeNamesTheOffenderInTheDiagnostic) {
  try {
    (void)table_.ExecPmf(9, 0, 0);
    FAIL() << "expected TaskTypeRangeError";
  } catch (const TaskTypeRangeError& error) {
    EXPECT_EQ(error.type(), 9u);
    EXPECT_EQ(error.num_types(), 2u);
    const std::string what = error.what();
    EXPECT_NE(what.find("task-type table"), std::string::npos) << what;
    EXPECT_NE(what.find("task type 9"), std::string::npos) << what;
    EXPECT_NE(what.find("2 types"), std::string::npos) << what;
  }
}

TEST(TaskTypeTable, RejectsMismatchedEtc) {
  const cluster::Cluster cluster({test::SimpleNode()});
  const EtcMatrix etc(1, 2, {1.0, 2.0});  // 2 machines vs 1 node
  EXPECT_THROW((void)TaskTypeTable(cluster, etc, 0.25),
               std::invalid_argument);
}

TEST(TaskTypeTable, RejectsNonPositiveCov) {
  const cluster::Cluster cluster({test::SimpleNode()});
  const EtcMatrix etc(1, 1, {1.0});
  EXPECT_THROW((void)TaskTypeTable(cluster, etc, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::workload
