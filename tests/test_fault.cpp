// Fault subsystem tests: schedule generation, injector bookkeeping, engine
// failure/throttle semantics under both recovery policies, and the two
// system-level guarantees the extension must keep — the fault-free baseline
// is bit-identical to the pre-fault engine (golden values below), and
// fault-enabled runs are deterministic regardless of thread count.
#include "fault/fault_model.hpp"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "experiment/paper_config.hpp"
#include "fault/fault_injector.hpp"
#include "fault/recovery.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_runner.hpp"
#include "test_support.hpp"

namespace ecdra {
namespace {

// ---------------------------- schedule generation ----------------------------

fault::FaultModelOptions FailureOptions(double mtbf, double horizon,
                                        double repair = 0.0) {
  fault::FaultModelOptions options;
  options.mtbf = mtbf;
  options.repair_time = repair;
  options.horizon = horizon;
  return options;
}

TEST(FaultModel, DisabledOptionsYieldEmptySchedule) {
  const cluster::Cluster cluster({test::SimpleNode(1, 4)});
  fault::FaultModelOptions options;  // all zero
  EXPECT_FALSE(options.enabled());
  const fault::FaultSchedule schedule =
      fault::GenerateFaultSchedule(cluster, options, util::RngStream(1));
  EXPECT_TRUE(schedule.empty());
}

TEST(FaultModel, ScheduleIsDeterministicSortedAndBounded) {
  const cluster::Cluster cluster({test::SimpleNode(1, 4)});
  const fault::FaultModelOptions options =
      FailureOptions(50.0, 200.0, /*repair=*/25.0);
  const util::RngStream rng = util::RngStream(99).Substream("fault");
  const fault::FaultSchedule a =
      fault::GenerateFaultSchedule(cluster, options, rng);
  const fault::FaultSchedule b =
      fault::GenerateFaultSchedule(cluster, options, rng);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.events, b.events);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_GT(a.events[i].time, 0.0);
    EXPECT_LT(a.events[i].time, options.horizon);
    EXPECT_LT(a.events[i].flat_core, cluster.total_cores());
    if (i > 0) EXPECT_LE(a.events[i - 1].time, a.events[i].time);
  }
}

TEST(FaultModel, PerCoreFailuresAndRepairsAlternate) {
  const cluster::Cluster cluster({test::SimpleNode(1, 3)});
  const fault::FaultSchedule schedule = fault::GenerateFaultSchedule(
      cluster, FailureOptions(40.0, 500.0, /*repair=*/10.0),
      util::RngStream(7));
  std::vector<bool> dead(cluster.total_cores(), false);
  for (const fault::FaultEvent& event : schedule.events) {
    if (event.kind == fault::FaultEventKind::kCoreFailure) {
      EXPECT_FALSE(dead[event.flat_core]);
      dead[event.flat_core] = true;
    } else {
      ASSERT_EQ(event.kind, fault::FaultEventKind::kCoreRepair);
      EXPECT_TRUE(dead[event.flat_core]);
      dead[event.flat_core] = false;
    }
  }
}

TEST(FaultModel, PermanentFailuresAreOnePerCore) {
  const cluster::Cluster cluster({test::SimpleNode(1, 8)});
  // Tiny MTBF vs. the horizon: without repair every core fails exactly once.
  const fault::FaultSchedule schedule = fault::GenerateFaultSchedule(
      cluster, FailureOptions(1.0, 1e4), util::RngStream(3));
  EXPECT_EQ(schedule.events.size(), cluster.total_cores());
  for (const fault::FaultEvent& event : schedule.events) {
    EXPECT_EQ(event.kind, fault::FaultEventKind::kCoreFailure);
  }
}

TEST(FaultModel, WeibullLifetimesMatchTheRequestedMean) {
  const cluster::Cluster cluster({test::SimpleNode(1, 1)});
  fault::FaultModelOptions options = FailureOptions(100.0, 1e9);
  options.lifetime = fault::LifetimeDistribution::kWeibull;
  options.weibull_shape = 2.0;
  // First-failure times across many independent substreams estimate the mean.
  double sum = 0.0;
  const int reps = 4000;
  for (int i = 0; i < reps; ++i) {
    const fault::FaultSchedule schedule = fault::GenerateFaultSchedule(
        cluster, options, util::RngStream(1).Substream("rep", i));
    ASSERT_EQ(schedule.events.size(), 1u);
    sum += schedule.events[0].time;
  }
  EXPECT_NEAR(sum / reps, 100.0, 5.0);
}

TEST(FaultModel, ThrottleIntervalsCarryTheFloorAndAlternate) {
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  fault::FaultModelOptions options;
  options.throttle_interval = 30.0;
  options.throttle_duration = 10.0;
  options.throttle_floor = 3;
  options.horizon = 1000.0;
  const fault::FaultSchedule schedule =
      fault::GenerateFaultSchedule(cluster, options, util::RngStream(11));
  ASSERT_FALSE(schedule.empty());
  std::vector<bool> throttled(cluster.total_cores(), false);
  for (const fault::FaultEvent& event : schedule.events) {
    if (event.kind == fault::FaultEventKind::kThrottleStart) {
      EXPECT_FALSE(throttled[event.flat_core]);
      EXPECT_EQ(event.pstate_floor, 3u);
      throttled[event.flat_core] = true;
    } else {
      ASSERT_EQ(event.kind, fault::FaultEventKind::kThrottleEnd);
      EXPECT_TRUE(throttled[event.flat_core]);
      throttled[event.flat_core] = false;
    }
  }
}

// ------------------------------ fault domains --------------------------------

TEST(FaultDomains, DeriveNodeDomainsGroupsCoresByNode) {
  const cluster::Cluster cluster(
      {test::SimpleNode(1, 3), test::SimpleNode(1, 2)});
  const fault::FaultDomainLayout layout = fault::DeriveNodeDomains(cluster);
  ASSERT_EQ(layout.num_domains(), 2u);
  EXPECT_EQ(layout.names[0], "node0");
  EXPECT_EQ(layout.names[1], "node1");
  EXPECT_EQ(layout.members[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(layout.members[1], (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(layout.domain_of_core,
            (std::vector<std::size_t>{0, 0, 0, 1, 1}));
}

TEST(FaultDomains, ResolveParsesExplicitSpecCoveringEveryCore) {
  const cluster::Cluster cluster({test::SimpleNode(1, 6)});
  const fault::FaultDomainLayout layout =
      fault::ResolveFaultDomains(cluster, "rackA:0-3,rackB:4-5");
  ASSERT_EQ(layout.num_domains(), 2u);
  EXPECT_EQ(layout.names[0], "rackA");
  EXPECT_EQ(layout.members[0], (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(layout.members[1], (std::vector<std::size_t>{4, 5}));

  // The empty spec falls back to the node-per-domain default.
  const fault::FaultDomainLayout derived =
      fault::ResolveFaultDomains(cluster, "");
  EXPECT_EQ(derived.names, fault::DeriveNodeDomains(cluster).names);
}

TEST(FaultDomains, ResolveRejectsGapsOverlapsAndMalformedSpecs) {
  const cluster::Cluster cluster({test::SimpleNode(1, 4)});
  // Gap: core 3 uncovered.
  EXPECT_THROW((void)fault::ResolveFaultDomains(cluster, "a:0-2"),
               std::invalid_argument);
  // Overlap: core 2 claimed twice.
  EXPECT_THROW((void)fault::ResolveFaultDomains(cluster, "a:0-2,b:2-3"),
               std::invalid_argument);
  // Range beyond the cluster.
  EXPECT_THROW((void)fault::ResolveFaultDomains(cluster, "a:0-9"),
               std::invalid_argument);
  // Malformed entries.
  EXPECT_THROW((void)fault::ResolveFaultDomains(cluster, "nonsense"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::ResolveFaultDomains(cluster, "a:3-1"),
               std::invalid_argument);
}

TEST(FaultModel, DomainOutagesAlternatePerDomainAndStayBounded) {
  const cluster::Cluster cluster(
      {test::SimpleNode(1, 2), test::SimpleNode(1, 2)});
  fault::FaultModelOptions options;
  options.domain_mtbf = 40.0;
  options.domain_repair_time = 10.0;
  options.horizon = 500.0;
  const fault::FaultDomainLayout layout = fault::DeriveNodeDomains(cluster);
  const fault::FaultSchedule schedule = fault::GenerateFaultSchedule(
      cluster, layout, options, util::RngStream(21));
  ASSERT_FALSE(schedule.empty());
  std::vector<bool> down(layout.num_domains(), false);
  for (const fault::FaultEvent& event : schedule.events) {
    ASSERT_LT(event.domain, layout.num_domains());
    EXPECT_LT(event.time, options.horizon);
    if (event.kind == fault::FaultEventKind::kDomainOutage) {
      EXPECT_FALSE(down[event.domain]);
      down[event.domain] = true;
    } else {
      ASSERT_EQ(event.kind, fault::FaultEventKind::kDomainRepair);
      EXPECT_TRUE(down[event.domain]);
      down[event.domain] = false;
    }
  }
}

TEST(FaultModel, RateZeroDomainsAreBitIdenticalToTheDomainFreeSchedule) {
  // The common-random-numbers guarantee: passing a domain layout with
  // domain_mtbf == 0 draws nothing from the "fault-domain" substreams, so
  // the per-core schedule is the same object the legacy overload generates.
  const cluster::Cluster cluster({test::SimpleNode(1, 4)});
  const fault::FaultModelOptions options =
      FailureOptions(50.0, 400.0, /*repair=*/20.0);
  const util::RngStream rng = util::RngStream(99).Substream("fault");
  const fault::FaultSchedule with_domains = fault::GenerateFaultSchedule(
      cluster, fault::DeriveNodeDomains(cluster), options, rng);
  const fault::FaultSchedule without =
      fault::GenerateFaultSchedule(cluster, options, rng);
  EXPECT_EQ(with_domains.events, without.events);
}

TEST(FaultModel, CascadeThrottleSpreadsOnsetsToDomainSiblings) {
  const cluster::Cluster cluster({test::SimpleNode(1, 3)});
  fault::FaultModelOptions options;
  options.throttle_interval = 60.0;
  options.throttle_duration = 15.0;
  options.throttle_floor = 2;
  options.cascade_throttle = true;
  options.horizon = 300.0;
  const fault::FaultDomainLayout layout = fault::DeriveNodeDomains(cluster);
  const fault::FaultSchedule schedule = fault::GenerateFaultSchedule(
      cluster, layout, options, util::RngStream(5));
  ASSERT_FALSE(schedule.empty());
  // Every onset was duplicated to the whole (3-core) domain: each throttle
  // timestamp carries one event per member core.
  std::size_t starts = 0;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const fault::FaultEvent& event = schedule.events[i];
    if (event.kind != fault::FaultEventKind::kThrottleStart) continue;
    ++starts;
    std::vector<std::size_t> cores_at_time;
    for (const fault::FaultEvent& other : schedule.events) {
      if (other.kind == event.kind && other.time == event.time) {
        cores_at_time.push_back(other.flat_core);
      }
    }
    EXPECT_EQ(cores_at_time.size(), 3u) << "onset at t=" << event.time;
  }
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts % 3, 0u);
}

// -------------------------------- injector ----------------------------------

TEST(FaultInjector, TracksAvailabilityFloorsAndCounts) {
  fault::FaultInjector injector(2, {});
  EXPECT_TRUE(injector.available(0));
  EXPECT_TRUE(injector.available(1));
  EXPECT_EQ(injector.pstate_floor(0), 0u);

  injector.Apply({5.0, fault::FaultEventKind::kCoreFailure, 0, 0});
  EXPECT_FALSE(injector.available(0));
  EXPECT_TRUE(injector.available(1));
  EXPECT_EQ(injector.unavailable_cores(), 1u);
  EXPECT_EQ(injector.failures_applied(), 1u);

  injector.Apply({6.0, fault::FaultEventKind::kThrottleStart, 1, 2});
  EXPECT_EQ(injector.pstate_floor(1), 2u);
  EXPECT_EQ(injector.throttles_applied(), 1u);

  injector.Apply({7.0, fault::FaultEventKind::kCoreRepair, 0, 0});
  EXPECT_TRUE(injector.available(0));
  EXPECT_EQ(injector.unavailable_cores(), 0u);
  EXPECT_EQ(injector.repairs_applied(), 1u);

  injector.Apply({8.0, fault::FaultEventKind::kThrottleEnd, 1, 0});
  EXPECT_EQ(injector.pstate_floor(1), 0u);
}

TEST(FaultInjector, RejectsEventsNamingCoresOutsideTheCluster) {
  fault::FaultSchedule schedule;
  schedule.events.push_back({1.0, fault::FaultEventKind::kCoreFailure, 9, 0});
  EXPECT_THROW((void)fault::FaultInjector(2, schedule),
               std::invalid_argument);
}

TEST(FaultInjector, DomainOutageComposesWithPerCoreFailures) {
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  fault::FaultInjector injector(2, {}, fault::DeriveNodeDomains(cluster));

  injector.Apply({5.0, fault::FaultEventKind::kDomainOutage, 0, 0, 0});
  EXPECT_FALSE(injector.available(0));
  EXPECT_FALSE(injector.available(1));
  EXPECT_TRUE(injector.domain_down(0));
  EXPECT_EQ(injector.unavailable_cores(), 2u);
  EXPECT_EQ(injector.domain_outages_applied(), 1u);

  // Core 0 also fails individually while the domain is dark.
  injector.Apply({6.0, fault::FaultEventKind::kCoreFailure, 0, 0});
  EXPECT_EQ(injector.unavailable_cores(), 2u);  // no double count

  // The domain repair revives core 1 but NOT core 0, which is still held
  // down by its own failure — availability is a count, not a bit.
  injector.Apply({7.0, fault::FaultEventKind::kDomainRepair, 0, 0, 0});
  EXPECT_FALSE(injector.available(0));
  EXPECT_TRUE(injector.available(1));
  EXPECT_FALSE(injector.domain_down(0));
  EXPECT_EQ(injector.unavailable_cores(), 1u);
  EXPECT_EQ(injector.domain_repairs_applied(), 1u);

  injector.Apply({8.0, fault::FaultEventKind::kCoreRepair, 0, 0});
  EXPECT_TRUE(injector.available(0));
  EXPECT_EQ(injector.unavailable_cores(), 0u);
}

TEST(FaultInjector, DomainFreeConstructionRejectsDomainEvents) {
  fault::FaultSchedule schedule;
  schedule.events.push_back(
      {1.0, fault::FaultEventKind::kDomainOutage, 0, 0, 0});
  EXPECT_THROW((void)fault::FaultInjector(2, schedule),
               std::invalid_argument);
}

TEST(RecoveryPolicy, NamesRoundTrip) {
  EXPECT_EQ(fault::RecoveryPolicyName(fault::RecoveryPolicy::kDropQueued),
            "drop");
  EXPECT_EQ(
      fault::RecoveryPolicyName(fault::RecoveryPolicy::kRequeueToScheduler),
      "requeue");
  EXPECT_EQ(fault::RecoveryPolicyName(fault::RecoveryPolicy::kMigrateQueued),
            "migrate");
  EXPECT_EQ(fault::ParseRecoveryPolicy("drop"),
            fault::RecoveryPolicy::kDropQueued);
  EXPECT_EQ(fault::ParseRecoveryPolicy("requeue"),
            fault::RecoveryPolicy::kRequeueToScheduler);
  EXPECT_EQ(fault::ParseRecoveryPolicy("migrate"),
            fault::RecoveryPolicy::kMigrateQueued);
  EXPECT_THROW((void)fault::ParseRecoveryPolicy("retry"),
               std::invalid_argument);
  // The error message and --list-policies share one source of truth.
  EXPECT_EQ(fault::RecoveryPolicyNames(), "drop, requeue, migrate");
  try {
    (void)fault::ParseRecoveryPolicy("retry");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("migrate"), std::string::npos)
        << error.what();
  }
}

// ----------------------------- engine semantics -----------------------------

/// Deterministic single-type delta-pmf table (same scheme as test_engine):
/// execution time on node n at state s is base * time_multiplier(s) exactly.
workload::TaskTypeTable DeltaTable(const cluster::Cluster& cluster,
                                   double base) {
  std::vector<pmf::Pmf> pmfs;
  for (std::size_t node = 0; node < cluster.num_nodes(); ++node) {
    for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
      pmfs.push_back(pmf::Pmf::Delta(
          base * cluster.node(node).pstates[s].time_multiplier));
    }
  }
  return workload::TaskTypeTable(1, cluster.num_nodes(), std::move(pmfs));
}

class FaultEngineTest : public ::testing::Test {
 protected:
  [[nodiscard]] static sim::TrialResult Run(
      const cluster::Cluster& cluster, std::vector<workload::Task> tasks,
      fault::FaultSchedule schedule, fault::RecoveryPolicy recovery,
      sim::TrialOptions options = {}) {
    workload::TaskTypeTable table = DeltaTable(cluster, 10.0);
    core::ImmediateModeScheduler scheduler(
        cluster, table, core::MakeHeuristic("SQ", util::RngStream(1)), {},
        1e9, tasks.size());
    if (options.energy_budget <= 0.0) options.energy_budget = 1e9;
    options.collect_task_records = true;
    options.fault_schedule = std::move(schedule);
    options.recovery_policy = recovery;
    sim::Engine engine(cluster, table, std::move(tasks), scheduler, options,
                       util::RngStream(7));
    return engine.Run();
  }

  [[nodiscard]] static fault::FaultSchedule Schedule(
      std::vector<fault::FaultEvent> events) {
    fault::FaultSchedule schedule;
    schedule.events = std::move(events);
    return schedule;
  }

  // SimpleNode P0 / P4 powers (efficiency 1.0), as in test_engine.
  static constexpr double kP0Power = 100.0;
  static constexpr double kP4Power = 100.0 / 2.25 * 0.4096;
};

TEST_F(FaultEngineTest, DropPolicyLosesRunningAndQueuedTasks) {
  // Single core: t0 runs [0, 10), t1 queues behind it. The core dies at 5.
  const sim::TrialResult result = Run(
      test::SingleCoreCluster(),
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 100.0}},
      Schedule({{5.0, fault::FaultEventKind::kCoreFailure, 0, 0}}),
      fault::RecoveryPolicy::kDropQueued);

  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.missed_deadlines, 2u);
  EXPECT_EQ(result.failures_injected, 1u);
  EXPECT_EQ(result.tasks_lost_to_failures, 2u);
  EXPECT_EQ(result.tasks_remapped, 0u);
  // Nothing outlives the failure: the trial ends at the fault instant.
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  // P0 for [0, 5), zero draw afterwards (dead core).
  EXPECT_NEAR(result.total_energy, 5.0 * kP0Power, 1e-9);
  EXPECT_TRUE(result.task_records[0].lost_to_failure);
  EXPECT_TRUE(result.task_records[1].lost_to_failure);
  EXPECT_DOUBLE_EQ(result.task_records[0].finish_time, 5.0);
}

TEST_F(FaultEngineTest, RequeueMovesStrandedTasksToSurvivingCore) {
  // Two cores: SQ puts t0 on core 0, t1 on (idle) core 1, t2 queues behind
  // t0 on core 0. Core 0 dies at 5; t0 restarts from scratch on core 1's
  // queue, t2 follows in FIFO order.
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  const sim::TrialResult result = Run(
      cluster,
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 100.0},
       workload::Task{2, 0, 2.0, 100.0}},
      Schedule({{5.0, fault::FaultEventKind::kCoreFailure, 0, 0}}),
      fault::RecoveryPolicy::kRequeueToScheduler);

  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.missed_deadlines, 0u);
  EXPECT_EQ(result.tasks_lost_to_failures, 0u);
  EXPECT_EQ(result.tasks_remapped, 2u);
  EXPECT_EQ(result.remapped_on_time, 2u);
  // Core 1: t1 [1, 11), then the restarted t0 [11, 21) — its 5 executed
  // units on core 0 are wasted — then t2 [21, 31).
  EXPECT_TRUE(result.task_records[0].remapped);
  EXPECT_TRUE(result.task_records[2].remapped);
  EXPECT_FALSE(result.task_records[1].remapped);
  EXPECT_EQ(result.task_records[0].flat_core, 1u);
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 11.0);
  EXPECT_DOUBLE_EQ(result.task_records[2].start_time, 21.0);
  EXPECT_DOUBLE_EQ(result.makespan, 31.0);
  // Core 0: P0 [0, 5), dead after. Core 1: P4 [0, 1), P0 [1, 31).
  EXPECT_NEAR(result.total_energy,
              5.0 * kP0Power + 1.0 * kP4Power + 30.0 * kP0Power, 1e-9);
}

TEST_F(FaultEngineTest, RequeueWithNoSurvivorLosesTheTasks) {
  const sim::TrialResult result = Run(
      test::SingleCoreCluster(),
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 100.0}},
      Schedule({{5.0, fault::FaultEventKind::kCoreFailure, 0, 0}}),
      fault::RecoveryPolicy::kRequeueToScheduler);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.tasks_lost_to_failures, 2u);
  EXPECT_EQ(result.tasks_remapped, 0u);
}

TEST_F(FaultEngineTest, ArrivalDuringOutageIsDiscardedAndRepairRestores) {
  // t0 is lost to the failure at 3; t1 arrives at 4 with the only core dead
  // (no candidates -> discarded); the core is repaired at 6 and t2 (arriving
  // at 8) completes normally.
  const sim::TrialResult result = Run(
      test::SingleCoreCluster(),
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 4.0, 100.0},
       workload::Task{2, 0, 8.0, 100.0}},
      Schedule({{3.0, fault::FaultEventKind::kCoreFailure, 0, 0},
                {6.0, fault::FaultEventKind::kCoreRepair, 0, 0}}),
      fault::RecoveryPolicy::kDropQueued);

  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.discarded, 1u);
  EXPECT_EQ(result.tasks_lost_to_failures, 1u);
  EXPECT_EQ(result.failures_injected, 1u);
  EXPECT_EQ(result.repairs_applied, 1u);
  EXPECT_FALSE(result.task_records[1].assigned);
  EXPECT_DOUBLE_EQ(result.task_records[2].start_time, 8.0);
  EXPECT_DOUBLE_EQ(result.makespan, 18.0);
  // P0 [0, 3), dead [3, 6), idle P4 [6, 8), P0 [8, 18).
  EXPECT_NEAR(result.total_energy,
              3.0 * kP0Power + 2.0 * kP4Power + 10.0 * kP0Power, 1e-9);
}

TEST_F(FaultEngineTest, ThrottleStretchesTheRunningTask) {
  // t0 runs at P0 from 0; a throttle with floor 2 lands at t = 4. The
  // remaining 6 units stretch by the P2/P0 multiplier ratio.
  const cluster::Cluster cluster = test::SingleCoreCluster();
  const double m2 = cluster.node(0).pstates[2].time_multiplier;
  const double p2_watts = cluster.node(0).pstates[2].power_watts;
  const sim::TrialResult result =
      Run(cluster, {workload::Task{0, 0, 0.0, 100.0}},
          Schedule({{4.0, fault::FaultEventKind::kThrottleStart, 0, 2}}),
          fault::RecoveryPolicy::kDropQueued);

  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.throttles_injected, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0 + 6.0 * m2);
  EXPECT_NEAR(result.total_energy, 4.0 * kP0Power + 6.0 * m2 * p2_watts,
              1e-9);
}

TEST_F(FaultEngineTest, ThrottleEndRestoresTheAssignedPState) {
  // Throttled [4, 8): 4 units run at P0, 4 / m2 units at P2, the rest at P0
  // again. Finish = 8 + (10 - 4 - 4 / m2).
  const cluster::Cluster cluster = test::SingleCoreCluster();
  const double m2 = cluster.node(0).pstates[2].time_multiplier;
  const double p2_watts = cluster.node(0).pstates[2].power_watts;
  const sim::TrialResult result =
      Run(cluster, {workload::Task{0, 0, 0.0, 100.0}},
          Schedule({{4.0, fault::FaultEventKind::kThrottleStart, 0, 2},
                    {8.0, fault::FaultEventKind::kThrottleEnd, 0, 0}}),
          fault::RecoveryPolicy::kDropQueued);

  EXPECT_EQ(result.completed, 1u);
  const double finish = 8.0 + (10.0 - 4.0 - 4.0 / m2);
  EXPECT_NEAR(result.makespan, finish, 1e-12);
  EXPECT_NEAR(result.total_energy,
              4.0 * kP0Power + 4.0 * p2_watts + (finish - 8.0) * kP0Power,
              1e-9);
}

TEST_F(FaultEngineTest, TaskStartedUnderThrottleRunsAtTheFloor) {
  // The throttle precedes the arrival: mapping only sees P-states >= 2 and
  // execution runs at the chosen (floored) state.
  const cluster::Cluster cluster = test::SingleCoreCluster();
  const double m2 = cluster.node(0).pstates[2].time_multiplier;
  const sim::TrialResult result =
      Run(cluster, {workload::Task{0, 0, 2.0, 100.0}},
          Schedule({{1.0, fault::FaultEventKind::kThrottleStart, 0, 2}}),
          fault::RecoveryPolicy::kDropQueued);
  EXPECT_EQ(result.completed, 1u);
  ASSERT_TRUE(result.task_records[0].assigned);
  // SQ breaks queue-length ties by eet: the fastest allowed state is P2.
  EXPECT_EQ(result.task_records[0].pstate, 2u);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0 + 10.0 * m2);
}

TEST_F(FaultEngineTest, MigratePolicyRestartsRunningAndMigratesQueued) {
  // Two single-core nodes (one fault domain each). SQ puts t0 on core 0,
  // t1 on (idle) core 1, t2 behind t0 on core 0. Core 0 dies at 5: the
  // *running* t0 restarts from scratch through the requeue path (remapped),
  // while the *queued* t2 migrates with its queue wait intact (migrated).
  const cluster::Cluster cluster(
      {test::SimpleNode(1, 1), test::SimpleNode(1, 1)});
  sim::TrialOptions options;
  options.fault_domains = fault::DeriveNodeDomains(cluster);
  const sim::TrialResult result = Run(
      cluster,
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 100.0},
       workload::Task{2, 0, 2.0, 100.0}},
      Schedule({{5.0, fault::FaultEventKind::kCoreFailure, 0, 0}}),
      fault::RecoveryPolicy::kMigrateQueued, options);

  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.tasks_lost_to_failures, 0u);
  EXPECT_EQ(result.tasks_remapped, 1u);
  EXPECT_EQ(result.tasks_migrated, 1u);
  EXPECT_EQ(result.migrated_on_time, 1u);
  EXPECT_TRUE(result.task_records[0].remapped);
  EXPECT_FALSE(result.task_records[0].migrated);
  EXPECT_TRUE(result.task_records[2].migrated);
  EXPECT_FALSE(result.task_records[2].remapped);
  // Core 1: t1 [1, 11), restarted t0 [11, 21), migrated t2 [21, 31).
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 11.0);
  EXPECT_DOUBLE_EQ(result.task_records[2].start_time, 21.0);
  EXPECT_DOUBLE_EQ(result.makespan, 31.0);
}

TEST_F(FaultEngineTest, MigrateWithNoSurvivorLosesTheQueuedTasks) {
  const sim::TrialResult result = Run(
      test::SingleCoreCluster(),
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 100.0}},
      Schedule({{5.0, fault::FaultEventKind::kCoreFailure, 0, 0}}),
      fault::RecoveryPolicy::kMigrateQueued);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.tasks_lost_to_failures, 2u);
  EXPECT_EQ(result.tasks_migrated, 0u);
}

TEST_F(FaultEngineTest, DomainOutageStrandsEveryCoreOfTheDomain) {
  // One two-core node = one domain; a second single-core node survives.
  // t0 and t1 run on the first node's cores, t2 runs on the lone survivor;
  // the domain outage at 5 strands both running tasks at once.
  const cluster::Cluster cluster(
      {test::SimpleNode(1, 2), test::SimpleNode(1, 1)});
  sim::TrialOptions options;
  options.fault_domains = fault::DeriveNodeDomains(cluster);
  const sim::TrialResult result = Run(
      cluster,
      {workload::Task{0, 0, 0.0, 200.0}, workload::Task{1, 0, 1.0, 200.0},
       workload::Task{2, 0, 2.0, 200.0}},
      Schedule({{5.0, fault::FaultEventKind::kDomainOutage, 0, 0, 0}}),
      fault::RecoveryPolicy::kRequeueToScheduler, options);

  EXPECT_EQ(result.domain_outages, 1u);
  EXPECT_EQ(result.failures_injected, 0u);  // no per-core failures involved
  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.tasks_remapped, 2u);
  // Both stranded tasks finished on the surviving third core.
  EXPECT_EQ(result.task_records[0].flat_core, 2u);
  EXPECT_EQ(result.task_records[1].flat_core, 2u);
}

TEST_F(FaultEngineTest, DomainRepairReturnsTheDomainToService) {
  // Outage at 3 kills the only (single-core) first domain; repair at 6
  // brings it back, and a task arriving at 8 runs on it again.
  const cluster::Cluster cluster({test::SimpleNode(1, 1)});
  sim::TrialOptions options;
  options.fault_domains = fault::DeriveNodeDomains(cluster);
  const sim::TrialResult result = Run(
      cluster,
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 8.0, 100.0}},
      Schedule({{3.0, fault::FaultEventKind::kDomainOutage, 0, 0, 0},
                {6.0, fault::FaultEventKind::kDomainRepair, 0, 0, 0}}),
      fault::RecoveryPolicy::kDropQueued, options);

  EXPECT_EQ(result.domain_outages, 1u);
  EXPECT_EQ(result.domain_repairs, 1u);
  EXPECT_EQ(result.tasks_lost_to_failures, 1u);
  EXPECT_EQ(result.completed, 1u);
  EXPECT_DOUBLE_EQ(result.task_records[1].start_time, 8.0);
  EXPECT_DOUBLE_EQ(result.makespan, 18.0);
}

// ------------------------- system-level guarantees --------------------------

/// Golden per-trial results captured from the pre-fault seed build (paper
/// setup, default RunOptions, en+rob): the fault-rate-0 path must reproduce
/// them bit-for-bit. Hex float literals make the comparison exact.
struct GoldenTrial {
  const char* heuristic;
  std::size_t trial;
  std::size_t missed;
  std::size_t completed;
  std::size_t discarded;
  std::size_t late;
  double total_energy;
  double makespan;
};

constexpr GoldenTrial kGolden[] = {
    {"SQ", 0, 251, 749, 1, 23, 0x1.8db3c4579b52dp+26, 0x1.fbd6d4cfc1993p+14},
    {"SQ", 1, 244, 756, 0, 18, 0x1.95fb7108f6038p+26, 0x1.07d8d6d16e689p+15},
    {"SQ", 2, 246, 754, 0, 9, 0x1.98910b831dfd3p+26, 0x1.0ab3c9cd0f907p+15},
    {"LL", 0, 231, 769, 1, 11, 0x1.7fe45e8188472p+26, 0x1.ff848d28567d5p+14},
    {"LL", 1, 234, 766, 0, 11, 0x1.88d72ad42179dp+26, 0x1.08480007805c7p+15},
    {"LL", 2, 233, 767, 0, 8, 0x1.8a78801543541p+26, 0x1.0c28783f5ee2p+15},
};

TEST(FaultBaseline, FaultRateZeroIsBitIdenticalToTheSeedBuild) {
  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  sim::RunOptions run;
  run.num_trials = 3;
  ASSERT_FALSE(run.fault.enabled());
  for (const char* heuristic : {"SQ", "LL"}) {
    const std::vector<sim::TrialResult> trials =
        sim::RunTrials(setup, heuristic, "en+rob", run);
    for (const GoldenTrial& golden : kGolden) {
      if (std::string(golden.heuristic) != heuristic) continue;
      const sim::TrialResult& trial = trials[golden.trial];
      EXPECT_EQ(trial.missed_deadlines, golden.missed) << heuristic;
      EXPECT_EQ(trial.completed, golden.completed) << heuristic;
      EXPECT_EQ(trial.discarded, golden.discarded) << heuristic;
      EXPECT_EQ(trial.finished_late, golden.late) << heuristic;
      // Bitwise equality: any hidden perturbation of the fault-free path
      // (an extra RNG draw, a reordered event, a float rounding change)
      // shows up here.
      EXPECT_EQ(trial.total_energy, golden.total_energy) << heuristic;
      EXPECT_EQ(trial.makespan, golden.makespan) << heuristic;
      EXPECT_EQ(trial.failures_injected, 0u);
      EXPECT_EQ(trial.tasks_lost_to_failures, 0u);
    }
  }
}

TEST(FaultDeterminism, ThreadCountDoesNotChangeFaultTrialResults) {
  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  sim::RunOptions run;
  run.num_trials = 4;
  run.fault.mtbf = 2e5;
  run.recovery = fault::RecoveryPolicy::kRequeueToScheduler;

  sim::RunOptions serial = run;
  serial.num_threads = 1;
  sim::RunOptions parallel = run;
  parallel.num_threads = 4;

  const std::vector<sim::TrialResult> a =
      sim::RunTrials(setup, "LL", "en+rob", serial);
  const std::vector<sim::TrialResult> b =
      sim::RunTrials(setup, "LL", "en+rob", parallel);
  ASSERT_EQ(a.size(), b.size());
  bool saw_failure = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].missed_deadlines, b[i].missed_deadlines) << i;
    EXPECT_EQ(a[i].completed, b[i].completed) << i;
    EXPECT_EQ(a[i].failures_injected, b[i].failures_injected) << i;
    EXPECT_EQ(a[i].tasks_lost_to_failures, b[i].tasks_lost_to_failures) << i;
    EXPECT_EQ(a[i].tasks_remapped, b[i].tasks_remapped) << i;
    EXPECT_EQ(a[i].total_energy, b[i].total_energy) << i;  // bitwise
    EXPECT_EQ(a[i].makespan, b[i].makespan) << i;
    saw_failure = saw_failure || a[i].failures_injected > 0;
  }
  // The sweep point is harsh enough that the guarantee is actually
  // exercised: at least one trial must inject a failure.
  EXPECT_TRUE(saw_failure);
}

TEST(FaultDeterminism, RepeatedFaultTrialsAreIdentical) {
  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  sim::RunOptions run;
  run.fault.mtbf = 1e5;
  run.fault.throttle_interval = 5e4;
  run.fault.throttle_duration = 5e3;
  run.recovery = fault::RecoveryPolicy::kRequeueToScheduler;
  const sim::TrialResult a =
      sim::RunSingleTrial(setup, "SQ", "en+rob", 0, run);
  const sim::TrialResult b =
      sim::RunSingleTrial(setup, "SQ", "en+rob", 0, run);
  EXPECT_EQ(a.missed_deadlines, b.missed_deadlines);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.throttles_injected, b.throttles_injected);
  EXPECT_EQ(a.tasks_remapped, b.tasks_remapped);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_GT(a.failures_injected + a.throttles_injected, 0u);
}

}  // namespace
}  // namespace ecdra
