// Checkpoint/resume: exact JSON round-trip of trial results, typed errors
// for every corruption mode (torn tail, flipped bits, torn header, blank
// tail), salvage-mode healing, duplicate-triple semantics, config
// fingerprinting, and the headline guarantee — a killed-and-resumed sweep
// (salvaged or not) is bit-identical to an uninterrupted one.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "sim/experiment_runner.hpp"
#include "util/crc32.hpp"

namespace ecdra::sim {
namespace {

SetupOptions SmallOptions() {
  SetupOptions options;
  options.cluster.num_nodes = 3;
  options.cvb.num_task_types = 10;
  options.workload.arrivals =
      workload::ArrivalSpec::PaperBursty(15, 30, 1.0 / 8.0, 1.0 / 48.0);
  return options;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "ecdra_checkpoint_" + name + ".jsonl";
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good());
  os << content;
}

/// Seals a serialized JSON object with the v5 CRC suffix, exactly as the
/// writer does — hand-crafted corruption fixtures go through this so only
/// the deliberately damaged part is wrong.
std::string Sealed(std::string object_json) {
  object_json.pop_back();  // the closing '}'
  char hex[9];
  const std::string_view digest =
      util::Crc32Hex(util::Crc32(object_json), hex);
  object_json += ",\"crc\":\"";
  object_json += digest;
  object_json += "\"}";
  return object_json;
}

std::string ValidHeaderLine() {
  return Sealed(
             "{\"record\":\"header\",\"schema\":7,\"seed\":\"5\","
             "\"config\":\"x\"}") +
         "\n";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// EXPECT_EQ on every simulation-deterministic field (bit-exact doubles;
/// excludes wall-clock decision_seconds).
void ExpectBitIdentical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.window_size, b.window_size);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.missed_deadlines, b.missed_deadlines);
  EXPECT_EQ(a.discarded, b.discarded);
  EXPECT_EQ(a.finished_late, b.finished_late);
  EXPECT_EQ(a.on_time_but_over_budget, b.on_time_but_over_budget);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.weighted_total, b.weighted_total);
  EXPECT_EQ(a.weighted_completed, b.weighted_completed);
  EXPECT_EQ(a.weighted_missed, b.weighted_missed);
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.energy_exhausted_at.has_value(),
            b.energy_exhausted_at.has_value());
  if (a.energy_exhausted_at && b.energy_exhausted_at) {
    EXPECT_EQ(*a.energy_exhausted_at, *b.energy_exhausted_at);
  }
  EXPECT_EQ(a.estimated_energy_remaining, b.estimated_energy_remaining);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(TrialResultJson, RoundTripIsBitExact) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.collect_counters = true;
  options.validation = validate::ValidationMode::kCheap;
  const TrialResult original = RunSingleTrial(setup, "SQ", "en+rob", 0,
                                              options);

  const TrialResult restored = TrialResultFromJson(TrialResultToJson(original));
  ExpectBitIdentical(original, restored);
  // Counters and validation ride along exactly.
  for (const obs::CounterField& field : obs::CounterFields()) {
    EXPECT_EQ(original.counters.*(field.slot), restored.counters.*(field.slot))
        << field.name;
  }
  EXPECT_EQ(original.counters.decision_seconds,
            restored.counters.decision_seconds);
  EXPECT_EQ(original.validation.mode, restored.validation.mode);
  EXPECT_EQ(original.validation.checks_run, restored.validation.checks_run);
  EXPECT_EQ(original.validation.violations, restored.validation.violations);
}

TEST(TrialResultJson, NullExhaustedAtAndViolationsRoundTrip) {
  TrialResult result;
  result.window_size = 10;
  result.completed = 10;
  result.total_energy = 0x1.8db3c4579b52dp+26;  // exactness probe
  result.validation.mode = validate::ValidationMode::kDeep;
  result.validation.checks_run = 7;
  result.validation.violations = 3;
  result.validation.by_check.push_back(
      validate::Violation{"pmf-mass", "lost mass", 12.5, 3});

  const TrialResult restored = TrialResultFromJson(TrialResultToJson(result));
  EXPECT_FALSE(restored.energy_exhausted_at.has_value());
  EXPECT_EQ(restored.total_energy, 0x1.8db3c4579b52dp+26);
  ASSERT_EQ(restored.validation.by_check.size(), 1u);
  EXPECT_EQ(restored.validation.by_check[0], result.validation.by_check[0]);
}

TEST(TrialResultJson, EconBlockRoundTripsBitExact) {
  TrialResult result;
  result.window_size = 10;
  result.completed = 10;
  result.econ.enabled = true;
  result.econ.revenue = 0x1.91eb851eb851fp+6;  // exactness probes
  result.econ.energy_cost = 0x1.2c0p+7;
  result.econ.net_profit = result.econ.revenue - result.econ.energy_cost;
  result.econ.value_offered = 250.0;
  result.econ.paid_finishes = 42;
  result.econ.decayed_finishes = 3;
  result.econ.premium_total = 17;
  result.econ.premium_on_time = 11;

  const std::string json = TrialResultToJson(result);
  EXPECT_NE(json.find("\"econ\":{"), std::string::npos) << json;
  const TrialResult restored = TrialResultFromJson(json);
  EXPECT_EQ(restored.econ, result.econ);
}

TEST(TrialResultJson, EconOffTrialsKeepThePreEconFormat) {
  // A trial without econ metering must serialize without any "econ" key —
  // and a pre-econ record line (no "econ" object) must load with the econ
  // block disabled, so old stores stay resumable.
  TrialResult result;
  result.window_size = 10;
  const std::string json = TrialResultToJson(result);
  EXPECT_EQ(json.find("\"econ\""), std::string::npos) << json;
  const TrialResult restored = TrialResultFromJson(json);
  EXPECT_FALSE(restored.econ.enabled);
  EXPECT_EQ(restored.econ, EconStats{});
}

TEST(TrialResultJson, RejectsTaskRecords) {
  TrialResult result;
  result.task_records.emplace_back();
  try {
    (void)TrialResultToJson(result);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kUnsupportedOptions);
  }
}

TEST(CheckpointWriter, WritesHeaderAndStoreLoadsTriples) {
  const std::string path = TempPath("writer_roundtrip");
  const CheckpointHeader header{.master_seed = 3, .config_hash = "abc"};
  TrialResult a;
  a.window_size = 5;
  a.completed = 4;
  TrialResult b;
  b.window_size = 5;
  b.completed = 2;
  {
    CheckpointWriter writer(path, header);
    writer.Append("SQ", "en+rob", 0, a);
    writer.Append("SQ", "en+rob", 2, b);
  }

  const CheckpointStore store = CheckpointStore::Load(path);
  EXPECT_EQ(store.header(), header);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.Find("SQ", "en+rob", 0), nullptr);
  EXPECT_EQ(store.Find("SQ", "en+rob", 0)->completed, 4u);
  ASSERT_NE(store.Find("SQ", "en+rob", 2), nullptr);
  EXPECT_EQ(store.Find("SQ", "en+rob", 2)->completed, 2u);
  EXPECT_EQ(store.Find("SQ", "en+rob", 1), nullptr);
  EXPECT_EQ(store.Find("LL", "en+rob", 0), nullptr);
  EXPECT_FALSE(store.dropped_partial_tail());
  std::remove(path.c_str());
}

TEST(CheckpointWriter, AppendsToMatchingFileAndDuplicateLastWins) {
  const std::string path = TempPath("writer_append");
  const CheckpointHeader header{.master_seed = 3, .config_hash = "abc"};
  TrialResult first;
  first.completed = 1;
  TrialResult second;
  second.completed = 2;
  {
    CheckpointWriter writer(path, header);
    writer.Append("SQ", "en", 0, first);
  }
  {
    // Re-opening with the same header appends; the re-written triple's
    // later record wins on load.
    CheckpointWriter writer(path, header);
    writer.Append("SQ", "en", 0, second);
  }
  const CheckpointStore store = CheckpointStore::Load(path);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find("SQ", "en", 0)->completed, 2u);
  std::remove(path.c_str());
}

TEST(CheckpointWriter, RefusesMismatchedExistingFile) {
  const std::string path = TempPath("writer_mismatch");
  {
    CheckpointWriter writer(path,
                            {.master_seed = 3, .config_hash = "abc"});
  }
  try {
    CheckpointWriter writer(path, {.master_seed = 4, .config_hash = "abc"});
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kConfigMismatch);
  }
  std::remove(path.c_str());
}

TEST(CheckpointStore, TruncatedFinalLineIsTypedStrictAndDroppedTolerant) {
  const std::string path = TempPath("truncated");
  TrialResult result;
  result.completed = 1;
  {
    CheckpointWriter writer(path, {.master_seed = 5, .config_hash = "x"});
    writer.Append("SQ", "en", 0, result);
  }
  // Simulate a SIGKILL mid-write: cut the (valid) final record in half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    WriteFile(path, text + "{\"record\":\"trial\",\"heuristic\":\"SQ");
  }
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kTruncatedRecord);
  }
  const CheckpointStore store =
      CheckpointStore::Load(path, {.allow_partial_tail = true});
  EXPECT_TRUE(store.dropped_partial_tail());
  EXPECT_EQ(store.size(), 1u);  // the committed record survives
  std::remove(path.c_str());
}

TEST(CheckpointStore, WrongSchemaVersionIsTyped) {
  const std::string path = TempPath("schema");
  WriteFile(path,
            "{\"record\":\"header\",\"schema\":99,\"seed\":\"5\","
            "\"config\":\"x\"}\n");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
  }
  std::remove(path.c_str());
}

TEST(CheckpointStore, SchemaV1StoreIsRefusedNamingBothVersions) {
  // Stores written before the spec-based fingerprint (schema 1) hash a
  // different preimage, so their config field is not comparable; the load
  // must refuse with a typed error that names both versions instead of
  // silently resuming against a stale fingerprint.
  const std::string path = TempPath("schema_v1");
  WriteFile(path,
            "{\"record\":\"header\",\"schema\":1,\"seed\":\"5\","
            "\"config\":\"deadbeefdeadbeef\"}\n");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
    const std::string message = error.what();
    EXPECT_NE(message.find("schema version 1"), std::string::npos) << message;
    EXPECT_NE(message.find("this build reads 7"), std::string::npos)
        << message;
  }
  std::remove(path.c_str());
}

TEST(CheckpointStore, SchemaV2StoreIsRefusedNamingBothVersions) {
  // Schema 2 predates the run.governor fingerprint line; a v2 store cannot
  // attest what governor produced its trials, so the load refuses with a
  // typed error naming both schema versions.
  const std::string path = TempPath("schema_v2");
  WriteFile(path,
            "{\"record\":\"header\",\"schema\":2,\"seed\":\"5\","
            "\"config\":\"deadbeefdeadbeef\"}\n");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
    const std::string message = error.what();
    EXPECT_NE(message.find("schema version 2"), std::string::npos) << message;
    EXPECT_NE(message.find("this build reads 7"), std::string::npos)
        << message;
  }
  std::remove(path.c_str());
}

TEST(CheckpointStore, SchemaV3StoreIsRefusedNamingBothVersions) {
  // Schema 3 predates the run.mode / stream.* fingerprint lines and the
  // per-trial stream aggregate; a v3 store cannot attest whether its trials
  // ran fixed-trace or streaming semantics, so the load refuses.
  const std::string path = TempPath("schema_v3");
  WriteFile(path,
            "{\"record\":\"header\",\"schema\":3,\"seed\":\"5\","
            "\"config\":\"deadbeefdeadbeef\"}\n");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
    const std::string message = error.what();
    EXPECT_NE(message.find("schema version 3"), std::string::npos) << message;
    EXPECT_NE(message.find("this build reads 7"), std::string::npos)
        << message;
  }
  std::remove(path.c_str());
}

TEST(CheckpointStore, SchemaV4StoreIsRefusedNamingBothVersions) {
  // Schema 4 predates per-line CRCs, the domain-fault fingerprint lines,
  // and the migration scalars; salvage must not mistake its crc-less lines
  // for torn-write damage and destroy a healthy store, so the schema check
  // outranks the CRC check — strict and salvage loads both refuse.
  const std::string path = TempPath("schema_v4");
  WriteFile(path,
            "{\"record\":\"header\",\"schema\":4,\"seed\":\"5\","
            "\"config\":\"deadbeefdeadbeef\"}\n");
  for (const bool salvage : {false, true}) {
    try {
      (void)CheckpointStore::Load(path, {.salvage = salvage});
      FAIL() << "expected CheckpointError (salvage=" << salvage << ")";
    } catch (const CheckpointError& error) {
      EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
      const std::string message = error.what();
      EXPECT_NE(message.find("schema version 4"), std::string::npos)
          << message;
      EXPECT_NE(message.find("this build reads 7"), std::string::npos)
          << message;
    }
  }
  // The refused file is untouched: salvage never truncates a logical refusal.
  EXPECT_NE(ReadFile(path).find("\"schema\":4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointStore, SchemaV5StoreIsRefusedNamingBothVersions) {
  // Schema 5 predates the job block (env.workload.jobs.*, run.jobs.placement)
  // in the fingerprint preimage and the per-trial "jobs" aggregate; a v5
  // store cannot attest whether gang jobs shaped its trials, so both strict
  // and salvage loads refuse.
  const std::string path = TempPath("schema_v5");
  WriteFile(path, Sealed("{\"record\":\"header\",\"schema\":5,\"seed\":\"5\","
                         "\"config\":\"deadbeefdeadbeef\"}") +
                      "\n");
  for (const bool salvage : {false, true}) {
    try {
      (void)CheckpointStore::Load(path, {.salvage = salvage});
      FAIL() << "expected CheckpointError (salvage=" << salvage << ")";
    } catch (const CheckpointError& error) {
      EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
      const std::string message = error.what();
      EXPECT_NE(message.find("schema version 5"), std::string::npos)
          << message;
      EXPECT_NE(message.find("this build reads 7"), std::string::npos)
          << message;
    }
  }
  EXPECT_NE(ReadFile(path).find("\"schema\":5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointStore, SchemaV6StoreIsRefusedNamingBothVersions) {
  // Schema 6 predates the econ block (env.econ.*, run.econ.*) in the
  // fingerprint preimage and the per-trial "econ" aggregate; a v6 store
  // cannot attest whether value-aware policies shaped its trials, so both
  // strict and salvage loads refuse.
  const std::string path = TempPath("schema_v6");
  WriteFile(path, Sealed("{\"record\":\"header\",\"schema\":6,\"seed\":\"5\","
                         "\"config\":\"deadbeefdeadbeef\"}") +
                      "\n");
  for (const bool salvage : {false, true}) {
    try {
      (void)CheckpointStore::Load(path, {.salvage = salvage});
      FAIL() << "expected CheckpointError (salvage=" << salvage << ")";
    } catch (const CheckpointError& error) {
      EXPECT_EQ(error.kind(), CheckpointErrorKind::kSchemaVersion);
      const std::string message = error.what();
      EXPECT_NE(message.find("schema version 6"), std::string::npos)
          << message;
      EXPECT_NE(message.find("this build reads 7"), std::string::npos)
          << message;
    }
  }
  EXPECT_NE(ReadFile(path).find("\"schema\":6"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointStore, MalformedInteriorRecordIsTyped) {
  const std::string path = TempPath("bad_record");
  WriteFile(path, ValidHeaderLine() + "{not json}\n");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kBadRecord);
  }
  std::remove(path.c_str());
}

TEST(CheckpointStore, MissingHeaderAndMissingFileAreTyped) {
  const std::string path = TempPath("no_header");
  WriteFile(path, "{\"record\":\"trial\"}\n");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kBadHeader);
  }
  std::remove(path.c_str());
  try {
    (void)CheckpointStore::Load(TempPath("does_not_exist"));
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kIo);
  }
}

// ---------------------------------------------------------------------------
// Torn-write matrix: each damage mode is refused (typed) under a strict load
// and healed under salvage, which truncates the file to its longest valid
// prefix and reports how many records were dropped.
// ---------------------------------------------------------------------------

/// Header + `trials` sequential trial records written through the real
/// writer, so every line carries a correct CRC.
void WriteStore(const std::string& path, std::size_t trials) {
  CheckpointWriter writer(path, {.master_seed = 5, .config_hash = "x"});
  for (std::size_t i = 0; i < trials; ++i) {
    TrialResult result;
    result.window_size = 10;
    result.completed = i + 1;
    writer.Append("SQ", "en", i, result);
  }
}

TEST(CheckpointSalvage, TruncatedMidRecordRefusedStrictHealedBySalvage) {
  const std::string path = TempPath("salvage_torn_tail");
  WriteStore(path, 2);
  WriteFile(path, ReadFile(path) + "{\"record\":\"trial\",\"heuristic\":\"SQ");
  try {
    (void)CheckpointStore::Load(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kTruncatedRecord);
  }
  const CheckpointStore store = CheckpointStore::Load(path, {.salvage = true});
  EXPECT_TRUE(store.header_valid());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped_records(), 1u);
  // The file was truncated to the valid prefix: a strict load now succeeds.
  EXPECT_EQ(CheckpointStore::Load(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, CorruptedCrcRefusedStrictHealedBySalvage) {
  const std::string path = TempPath("salvage_bit_rot");
  WriteStore(path, 3);
  // Flip payload bits in the *second* trial record (line 3): bit rot in the
  // middle, with a perfectly good record after it.
  std::string text = ReadFile(path);
  std::size_t line_start = 0;
  for (int skipped = 0; skipped < 2; ++skipped) {
    line_start = text.find('\n', line_start) + 1;
  }
  const std::size_t hit = text.find("\"record\":\"trial\"", line_start);
  ASSERT_NE(hit, std::string::npos);
  text[hit + 10] = 'x';  // "trial" -> "xrial"; the line's CRC no longer holds
  WriteFile(path, text);

  // Strict refuses even with the partial-tail allowance: flipped bits are
  // not a torn tail.
  try {
    (void)CheckpointStore::Load(path, {.allow_partial_tail = true});
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kCrcMismatch);
  }
  // Salvage keeps everything before the damage; the good record *after* the
  // damage is gone too (append-only files have no trustworthy frame resync)
  // and is counted so the caller can say how many trials re-run.
  const CheckpointStore store = CheckpointStore::Load(path, {.salvage = true});
  EXPECT_TRUE(store.header_valid());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.dropped_records(), 2u);
  EXPECT_EQ(CheckpointStore::Load(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, TornHeaderRefusedStrictRecreatedAfterSalvage) {
  const std::string path = TempPath("salvage_torn_header");
  WriteFile(path, "{\"record\":\"head");  // header write cut by a crash
  try {
    (void)CheckpointStore::Load(path, {.allow_partial_tail = true});
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kBadHeader);
  }
  const CheckpointStore store = CheckpointStore::Load(path, {.salvage = true});
  EXPECT_FALSE(store.header_valid());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dropped_records(), 1u);
  // The salvaged file is empty; the writer starts it over atomically.
  WriteStore(path, 1);
  EXPECT_EQ(CheckpointStore::Load(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, BlankTailLineRefusedStrictHealedBySalvage) {
  const std::string path = TempPath("salvage_blank_tail");
  WriteStore(path, 1);
  WriteFile(path, ReadFile(path) + "\n");  // committed blank line
  for (const bool allow_partial : {false, true}) {
    try {
      (void)CheckpointStore::Load(path, {.allow_partial_tail = allow_partial});
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& error) {
      EXPECT_EQ(error.kind(), CheckpointErrorKind::kBadRecord);
    }
  }
  const CheckpointStore store = CheckpointStore::Load(path, {.salvage = true});
  EXPECT_TRUE(store.header_valid());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.dropped_records(), 1u);
  EXPECT_EQ(CheckpointStore::Load(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, CrcValidButSemanticallyBadRecordIsNeverSalvaged) {
  // A record that passed its CRC was committed intact: if it is wrong it is
  // wrong by construction (a writer bug), and papering over it would hide
  // the bug — salvage refuses exactly like a strict load.
  const std::string path = TempPath("salvage_semantic");
  WriteFile(path, ValidHeaderLine() +
                      Sealed("{\"record\":\"trial\",\"heuristic\":\"SQ\","
                             "\"filter\":\"en\",\"trial\":0,\"result\":{}}") +
                      "\n");
  for (const bool salvage : {false, true}) {
    try {
      (void)CheckpointStore::Load(path, {.salvage = salvage});
      FAIL() << "expected CheckpointError (salvage=" << salvage << ")";
    } catch (const CheckpointError& error) {
      EXPECT_EQ(error.kind(), CheckpointErrorKind::kBadRecord);
    }
  }
  std::remove(path.c_str());
}

TEST(ConfigFingerprint, SensitiveToResultsShapingOptionsOnly) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  const std::string base = ConfigFingerprint(setup, options);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, ConfigFingerprint(setup, options));  // deterministic

  // A different sampled environment changes the hash.
  const ExperimentSetup other = BuildExperimentSetup(4, SmallOptions());
  EXPECT_NE(base, ConfigFingerprint(other, options));

  // Trial-shaping knobs change the hash...
  RunOptions changed = options;
  changed.filter_options.robustness_threshold = 0.75;
  EXPECT_NE(base, ConfigFingerprint(setup, changed));
  changed = options;
  changed.fault.mtbf = 1000.0;
  EXPECT_NE(base, ConfigFingerprint(setup, changed));
  // ...including the econ block: an econ run settles profit per trial, so a
  // resume must never splice its records into a paper-metric series.
  changed = options;
  changed.econ_enabled = true;
  changed.econ.type_values = {1.0, 4.0};
  EXPECT_NE(base, ConfigFingerprint(setup, changed));

  // ...execution mechanics do not.
  RunOptions mechanics = options;
  mechanics.num_threads = 7;
  mechanics.num_trials = 999;
  mechanics.trial_timeout = 5.0;
  mechanics.max_attempts = 3;
  mechanics.validation = validate::ValidationMode::kDeep;
  mechanics.checkpoint_path = "/tmp/elsewhere.jsonl";
  mechanics.collect_counters = true;
  EXPECT_EQ(base, ConfigFingerprint(setup, mechanics));
}

TEST(Resume, InterruptedSweepResumesBitIdentical) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  const std::string path = TempPath("resume_golden");
  std::remove(path.c_str());

  RunOptions options;
  options.num_trials = 6;
  options.num_threads = 2;

  // Uninterrupted reference run.
  const SweepResult reference = RunSweep(setup, "SQ", "en+rob", options);
  ASSERT_TRUE(reference.complete());
  ASSERT_EQ(reference.results.size(), 6u);

  // "Crashed" run: only the first 3 trials reach the checkpoint.
  RunOptions partial = options;
  partial.num_trials = 3;
  partial.checkpoint_path = path;
  ASSERT_TRUE(RunSweep(setup, "SQ", "en+rob", partial).complete());

  // Resumed run: 3 trials served from the store, 3 executed fresh.
  const CheckpointStore store = CheckpointStore::Load(path);
  RunOptions resumed_options = options;
  resumed_options.checkpoint_path = path;
  resumed_options.resume = &store;
  const SweepResult resumed = RunSweep(setup, "SQ", "en+rob", resumed_options);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.trials_resumed, 3u);
  ASSERT_EQ(resumed.results.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ExpectBitIdentical(reference.results[i], resumed.results[i]);
  }

  // The checkpoint now holds all six trials; a further resume re-runs none.
  const CheckpointStore full = CheckpointStore::Load(path);
  RunOptions all_resumed = options;
  all_resumed.resume = &full;
  const SweepResult nothing_to_do = RunSweep(setup, "SQ", "en+rob",
                                             all_resumed);
  EXPECT_EQ(nothing_to_do.trials_resumed, 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ExpectBitIdentical(reference.results[i], nothing_to_do.results[i]);
  }
  std::remove(path.c_str());
}

TEST(Resume, SalvagedResumeIsBitIdenticalToUninterrupted) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  const std::string path = TempPath("resume_salvage");
  std::remove(path.c_str());

  RunOptions options;
  options.num_trials = 6;
  options.num_threads = 1;  // append order == trial order

  const SweepResult reference = RunSweep(setup, "SQ", "en+rob", options);
  ASSERT_TRUE(reference.complete());
  ASSERT_EQ(reference.results.size(), 6u);

  // Full run, then a SIGKILL torn tail: the final record loses half itself.
  RunOptions checkpointed = options;
  checkpointed.checkpoint_path = path;
  ASSERT_TRUE(RunSweep(setup, "SQ", "en+rob", checkpointed).complete());
  {
    std::string text = ReadFile(path);
    ASSERT_EQ(text.back(), '\n');
    const std::size_t final_start = text.rfind('\n', text.size() - 2) + 1;
    text.resize(final_start + (text.size() - final_start) / 2);
    WriteFile(path, text);
  }

  // Salvage drops the torn record and truncates; resuming re-runs exactly
  // that trial and lands bit-identical to the uninterrupted reference.
  const CheckpointStore store =
      CheckpointStore::Load(path, {.salvage = true});
  EXPECT_TRUE(store.header_valid());
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.dropped_records(), 1u);
  RunOptions resumed_options = checkpointed;
  resumed_options.resume = &store;
  const SweepResult resumed = RunSweep(setup, "SQ", "en+rob", resumed_options);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.trials_resumed, 5u);
  ASSERT_EQ(resumed.results.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ExpectBitIdentical(reference.results[i], resumed.results[i]);
  }
  // The healed checkpoint is whole again: a strict load serves all six.
  EXPECT_EQ(CheckpointStore::Load(path).size(), 6u);
  std::remove(path.c_str());
}

TEST(Resume, RefusesStoreFromDifferentConfig) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  const ExperimentSetup other = BuildExperimentSetup(4, SmallOptions());
  const std::string path = TempPath("resume_mismatch");
  std::remove(path.c_str());

  RunOptions options;
  options.num_trials = 2;
  options.checkpoint_path = path;
  ASSERT_TRUE(RunSweep(other, "SQ", "en+rob", options).complete());

  const CheckpointStore store = CheckpointStore::Load(path);
  RunOptions resume_options;
  resume_options.num_trials = 2;
  resume_options.resume = &store;
  try {
    (void)RunSweep(setup, "SQ", "en+rob", resume_options);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kConfigMismatch);
  }
  std::remove(path.c_str());
}

TEST(Resume, CheckpointingRejectsPerTaskCollection) {
  const ExperimentSetup setup = BuildExperimentSetup(3, SmallOptions());
  RunOptions options;
  options.num_trials = 1;
  options.checkpoint_path = TempPath("records_reject");
  options.collect_task_records = true;
  try {
    (void)RunSweep(setup, "SQ", "en+rob", options);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& error) {
    EXPECT_EQ(error.kind(), CheckpointErrorKind::kUnsupportedOptions);
  }
}

}  // namespace
}  // namespace ecdra::sim
