#include "pmf/special_functions.hpp"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace ecdra::pmf {
namespace {

TEST(RegularizedGammaP, ShapeOneIsExponentialCdf) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10)
        << "x=" << x;
  }
}

TEST(RegularizedGammaP, KnownHalfwayPoint) {
  // For integer shape k, P(k, k) approaches 0.5 from below as k grows.
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 0.6321205588, 1e-9);
  EXPECT_NEAR(RegularizedGammaP(2.0, 2.0), 0.5939941503, 1e-9);
  // Shape 0.5: P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 1.0), std::erf(1.0), 1e-9);
  EXPECT_NEAR(RegularizedGammaP(0.5, 4.0), std::erf(2.0), 1e-9);
}

TEST(RegularizedGammaP, BoundariesAndMonotonicity) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
  double prev = 0.0;
  for (double x = 0.1; x < 30.0; x += 0.5) {
    const double p = RegularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-8);
}

TEST(RegularizedGammaP, InvalidArgumentsThrow) {
  EXPECT_THROW((void)RegularizedGammaP(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)RegularizedGammaP(1.0, -1.0), std::invalid_argument);
}

TEST(GammaCdf, ScalesWithScaleParameter) {
  // CDF of Gamma(shape, scale) at x equals P(shape, x / scale).
  EXPECT_NEAR(GammaCdf(2.0, 10.0, 20.0), RegularizedGammaP(2.0, 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(GammaCdf(2.0, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(GammaCdf(2.0, 10.0, -5.0), 0.0);
}

class GammaQuantileRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GammaQuantileRoundTrip, CdfOfQuantileIsP) {
  const auto [shape, scale, p] = GetParam();
  const double x = GammaQuantile(shape, scale, p);
  EXPECT_GT(x, 0.0);
  EXPECT_NEAR(GammaCdf(shape, scale, x), p, 1e-8)
      << "shape=" << shape << " scale=" << scale << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    SweepShapesScalesProbs, GammaQuantileRoundTrip,
    ::testing::Combine(::testing::Values(0.5, 1.0, 4.0, 16.0, 64.0),
                       ::testing::Values(1.0, 46.875, 750.0),
                       ::testing::Values(0.001, 0.05, 0.5, 0.95, 0.999)));

TEST(GammaQuantile, MedianOfExponential) {
  // Median of Exponential(scale) is scale * ln 2.
  EXPECT_NEAR(GammaQuantile(1.0, 2.0, 0.5), 2.0 * std::log(2.0), 1e-8);
}

TEST(GammaQuantile, InvalidProbabilityThrows) {
  EXPECT_THROW((void)GammaQuantile(1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)GammaQuantile(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)GammaQuantile(1.0, 0.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::pmf
