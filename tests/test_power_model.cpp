#include "cluster/power_model.hpp"

#include <gtest/gtest.h>

namespace ecdra::cluster {
namespace {

PowerModelInputs ReferenceInputs() {
  PowerModelInputs inputs;
  inputs.p0_power_watts = 130.0;
  inputs.high_voltage = 1.5;
  inputs.low_voltage = 1.0;
  inputs.frequency_ratios = {1.0, 0.8, 0.64, 0.512, 0.4096};
  return inputs;
}

TEST(PowerModel, AnchorsP0Power) {
  const PStateProfile profile = BuildPStateProfile(ReferenceInputs());
  EXPECT_DOUBLE_EQ(profile[0].power_watts, 130.0);
  EXPECT_DOUBLE_EQ(profile[0].voltage, 1.5);
  EXPECT_DOUBLE_EQ(profile[0].frequency_ratio, 1.0);
  EXPECT_DOUBLE_EQ(profile[0].time_multiplier, 1.0);
}

TEST(PowerModel, VoltageInterpolatesLinearly) {
  const PStateProfile profile = BuildPStateProfile(ReferenceInputs());
  EXPECT_DOUBLE_EQ(profile[1].voltage, 1.375);
  EXPECT_DOUBLE_EQ(profile[2].voltage, 1.25);
  EXPECT_DOUBLE_EQ(profile[3].voltage, 1.125);
  EXPECT_DOUBLE_EQ(profile[4].voltage, 1.0);
}

TEST(PowerModel, PowerFollowsCmosFormula) {
  // P = ACL * V^2 * f with ACL = 130 / 1.5^2.
  const PStateProfile profile = BuildPStateProfile(ReferenceInputs());
  const double acl = 130.0 / (1.5 * 1.5);
  for (std::size_t s = 0; s < kNumPStates; ++s) {
    EXPECT_NEAR(profile[s].power_watts,
                acl * profile[s].voltage * profile[s].voltage *
                    profile[s].frequency_ratio,
                1e-12);
  }
}

TEST(PowerModel, PowerStrictlyDecreasesTowardP4) {
  const PStateProfile profile = BuildPStateProfile(ReferenceInputs());
  for (std::size_t s = 1; s < kNumPStates; ++s) {
    EXPECT_LT(profile[s].power_watts, profile[s - 1].power_watts);
    EXPECT_GT(profile[s].time_multiplier, profile[s - 1].time_multiplier);
  }
}

TEST(PowerModel, TimeMultiplierIsInverseFrequency) {
  const PStateProfile profile = BuildPStateProfile(ReferenceInputs());
  for (std::size_t s = 0; s < kNumPStates; ++s) {
    EXPECT_NEAR(profile[s].time_multiplier * profile[s].frequency_ratio, 1.0,
                1e-12);
  }
}

TEST(PowerModel, LowStateDrawsRoughlyQuarterOfHigh) {
  // The paper notes the §VI distributions yield P4 power around 25% of P0.
  const PStateProfile profile = BuildPStateProfile(ReferenceInputs());
  const double ratio = profile[4].power_watts / profile[0].power_watts;
  EXPECT_GT(ratio, 0.10);
  EXPECT_LT(ratio, 0.40);
}

TEST(PowerModel, RejectsInvalidInputs) {
  PowerModelInputs inputs = ReferenceInputs();
  inputs.p0_power_watts = 0.0;
  EXPECT_THROW((void)BuildPStateProfile(inputs), std::invalid_argument);

  inputs = ReferenceInputs();
  inputs.low_voltage = 1.6;  // above high
  EXPECT_THROW((void)BuildPStateProfile(inputs), std::invalid_argument);

  inputs = ReferenceInputs();
  inputs.frequency_ratios[0] = 0.9;  // P0 must be exactly 1
  EXPECT_THROW((void)BuildPStateProfile(inputs), std::invalid_argument);

  inputs = ReferenceInputs();
  inputs.frequency_ratios = {1.0, 0.8, 0.9, 0.5, 0.4};  // not decreasing
  EXPECT_THROW((void)BuildPStateProfile(inputs), std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::cluster
