// Job-level scheduling: BuildJobGraph encoding validation, generator job
// shapes, and the engine's gang semantics — all-or-nothing simultaneous
// starts, map->reduce stage precedence with per-job deadline accounting,
// whole-gang requeue after a domain outage, and the demotion guarantee
// (an all-degenerate job workload takes the exact task-level event path).
#include "workload/job.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/factory.hpp"
#include "fault/fault_model.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "workload/workload_generator.hpp"

namespace ecdra::sim {
namespace {

using workload::kSelfJob;
using workload::Task;

/// Deterministic single-type table (delta pmfs): execution time on node n
/// at P-state s is base[n] * time_multiplier(s) exactly.
workload::TaskTypeTable DeltaTable(const cluster::Cluster& cluster,
                                   const std::vector<double>& base) {
  std::vector<pmf::Pmf> pmfs;
  for (std::size_t node = 0; node < cluster.num_nodes(); ++node) {
    for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
      pmfs.push_back(pmf::Pmf::Delta(
          base[node] * cluster.node(node).pstates[s].time_multiplier));
    }
  }
  return workload::TaskTypeTable(1, cluster.num_nodes(), std::move(pmfs));
}

/// A width-`width` stage-`stage` slab of tasks for job `job`, appended with
/// sequential ids.
void AppendStage(std::vector<Task>& tasks, std::size_t job, std::size_t stage,
                 std::size_t width, double arrival, double deadline) {
  for (std::size_t i = 0; i < width; ++i) {
    tasks.push_back(Task{.id = tasks.size(),
                         .type = 0,
                         .arrival = arrival,
                         .deadline = deadline,
                         .priority = 1.0,
                         .job = job,
                         .stage = stage});
  }
}

class JobEngineTest : public ::testing::Test {
 protected:
  [[nodiscard]] TrialResult Run(const cluster::Cluster& cluster,
                                const workload::TaskTypeTable& table,
                                std::vector<workload::Task> tasks,
                                TrialOptions options) {
    core::ImmediateModeScheduler scheduler(
        cluster, table, core::MakeHeuristic("SQ", util::RngStream(1)), {},
        options.energy_budget, tasks.size());
    Engine engine(cluster, table, std::move(tasks), scheduler, options,
                  util::RngStream(7));
    return engine.Run();
  }

  [[nodiscard]] static TrialOptions JobOptions() {
    TrialOptions options;
    options.energy_budget = 1e9;
    options.collect_task_records = true;
    options.jobs.enabled = true;
    return options;
  }
};

// ---------------------------------------------------------------------------
// BuildJobGraph: the encoding contract.

TEST(BuildJobGraph, MapReduceChainParses) {
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 1.0, 50.0);  // map gang
  AppendStage(tasks, 0, 1, 1, 1.0, 50.0);  // reduce
  const workload::JobGraph graph = workload::BuildJobGraph(tasks);
  ASSERT_EQ(graph.size(), 1u);
  const workload::Job& job = graph.jobs[0];
  ASSERT_EQ(job.stages.size(), 2u);
  EXPECT_EQ(job.stages[0].first_task, 0u);
  EXPECT_EQ(job.stages[0].width, 2u);
  EXPECT_EQ(job.stages[1].first_task, 2u);
  EXPECT_EQ(job.stages[1].width, 1u);
  EXPECT_EQ(job.total_tasks(), 3u);
  EXPECT_FALSE(job.degenerate());
  EXPECT_FALSE(workload::AllTasksDegenerate(tasks));
}

TEST(BuildJobGraph, SelfJobTasksFormDegenerateJobs) {
  const std::vector<Task> tasks = {Task{.id = 0, .arrival = 0.0},
                                   Task{.id = 1, .arrival = 1.0}};
  EXPECT_TRUE(workload::AllTasksDegenerate(tasks));
  const workload::JobGraph graph = workload::BuildJobGraph(tasks);
  ASSERT_EQ(graph.size(), 2u);
  EXPECT_TRUE(graph.jobs[0].degenerate());
  EXPECT_TRUE(graph.jobs[1].degenerate());
}

TEST(BuildJobGraph, RejectsSparseJobIds) {
  std::vector<Task> tasks;
  AppendStage(tasks, 5, 0, 2, 0.0, 10.0);  // first job must have id 0
  EXPECT_THROW((void)workload::BuildJobGraph(tasks), std::invalid_argument);
}

TEST(BuildJobGraph, RejectsJobStartingPastStageZero) {
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 1, 1, 0.0, 10.0);
  EXPECT_THROW((void)workload::BuildJobGraph(tasks), std::invalid_argument);
}

TEST(BuildJobGraph, RejectsMembersWithDifferentDeadlines) {
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 1, 0.0, 10.0);
  AppendStage(tasks, 0, 0, 1, 0.0, 20.0);  // deadline is a per-job property
  EXPECT_THROW((void)workload::BuildJobGraph(tasks), std::invalid_argument);
}

TEST(BuildJobGraph, RejectsMixedTypesWithinAStage) {
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 0.0, 10.0);
  tasks[1].type = 1;  // a gang runs one type
  EXPECT_THROW((void)workload::BuildJobGraph(tasks), std::invalid_argument);
}

TEST(BuildJobGraph, RejectsSkippedStageIndices) {
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 1, 0.0, 10.0);
  AppendStage(tasks, 0, 2, 1, 0.0, 10.0);  // stage 1 missing
  EXPECT_THROW((void)workload::BuildJobGraph(tasks), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Generator job shapes.

TEST(WorkloadGeneratorJobs, ShapesFollowTheConfiguredMix) {
  const cluster::Cluster cluster = test::SingleCoreCluster();
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  workload::WorkloadGeneratorOptions options;
  options.arrivals = workload::ArrivalSpec::PaperBursty(8, 16, 1.0 / 8.0,
                                                        1.0 / 48.0);
  options.jobs.enabled = true;
  options.jobs.widths = {{3, 1.0}};
  options.jobs.depths = {{2, 1.0}};
  options.jobs.deadline_scale = 1.5;
  util::RngStream rng(3);
  const std::vector<Task> tasks =
      workload::GenerateWorkload(table, options, rng);

  // The encoding the engine relies on round-trips through the validator.
  const workload::JobGraph graph = workload::BuildJobGraph(tasks);
  ASSERT_GT(graph.size(), 0u);
  for (const workload::Job& job : graph.jobs) {
    // depth 2: a width-3 map stage, then the width-1 reduce.
    ASSERT_EQ(job.stages.size(), 2u);
    EXPECT_EQ(job.stages[0].width, 3u);
    EXPECT_EQ(job.stages[1].width, 1u);
    // Arrival, deadline, and priority are per-job single sources.
    for (const workload::JobStage& stage : job.stages) {
      for (std::size_t m = 0; m < stage.width; ++m) {
        const Task& task = tasks[stage.first_task + m];
        EXPECT_EQ(task.arrival, job.arrival);
        EXPECT_EQ(task.deadline, job.deadline);
        EXPECT_EQ(task.priority, job.priority);
      }
    }
    EXPECT_GT(job.deadline, job.arrival);
  }
}

TEST(WorkloadGeneratorJobs, DegenerateShapeMatchesIndependentTasksBitwise) {
  // {1@1} x {1@1} with scale 1 must consume the same random numbers and
  // emit the same task list as the pre-jobs generator — the foundation of
  // the whole-stack bit-identity guarantee.
  const cluster::Cluster cluster = test::SingleCoreCluster();
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  workload::WorkloadGeneratorOptions options;
  options.arrivals = workload::ArrivalSpec::PaperBursty(8, 16, 1.0 / 8.0,
                                                        1.0 / 48.0);
  util::RngStream rng_a(3);
  const std::vector<Task> plain =
      workload::GenerateWorkload(table, options, rng_a);
  options.jobs.enabled = true;
  util::RngStream rng_b(3);
  const std::vector<Task> jobs =
      workload::GenerateWorkload(table, options, rng_b);
  ASSERT_EQ(plain.size(), jobs.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].type, jobs[i].type) << i;
    EXPECT_EQ(plain[i].arrival, jobs[i].arrival) << i;
    EXPECT_EQ(plain[i].deadline, jobs[i].deadline) << i;
    EXPECT_EQ(plain[i].priority, jobs[i].priority) << i;
    EXPECT_TRUE(workload::IsDegenerateJobTask(jobs[i])) << i;
  }
}

// ---------------------------------------------------------------------------
// Engine gang semantics.

TEST_F(JobEngineTest, GangStartIsAllOrNothing) {
  // Two cores; an independent task holds one of them until t = 10. The
  // width-2 gang arriving at t = 1 must NOT start its free-core member
  // early: both members wait and start together at t = 10. Deadline 21
  // leaves P0 as the only on-time P-state, pinning the exec time to 10.
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  std::vector<Task> tasks = {Task{.id = 0, .arrival = 0.0, .deadline = 50.0}};
  AppendStage(tasks, 1, 0, 2, 1.0, 21.0);

  const TrialResult result = Run(cluster, table, tasks, JobOptions());

  ASSERT_TRUE(result.jobs.enabled);
  EXPECT_EQ(result.jobs.jobs, 2u);  // the lone task is its own job
  EXPECT_EQ(result.jobs.jobs_on_time, 2u);
  EXPECT_EQ(result.jobs.gangs_placed, 1u);
  EXPECT_EQ(result.jobs.gang_waits, 1u);
  EXPECT_DOUBLE_EQ(result.jobs.gang_wait_seconds, 9.0);  // released 1, start 10
  EXPECT_EQ(result.completed, 3u);

  ASSERT_EQ(result.task_records.size(), 3u);
  const TaskRecord& a = result.task_records[1];
  const TaskRecord& b = result.task_records[2];
  EXPECT_DOUBLE_EQ(a.start_time, 10.0);
  EXPECT_DOUBLE_EQ(b.start_time, 10.0);  // simultaneous
  EXPECT_NE(a.flat_core, b.flat_core);   // distinct cores
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
}

TEST_F(JobEngineTest, MapReducePrecedenceGatesTheReduceStage) {
  // One map->reduce job on two cores, deadline 20.5: the chain-aware rho
  // (map exec + optimistic reduce tail must fit the deadline) forces the
  // map onto P0, so it runs [0, 10) on both cores — and the reduce may
  // only start when BOTH map members are done.
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 0.0, 20.5);
  AppendStage(tasks, 0, 1, 1, 0.0, 20.5);

  const TrialResult result = Run(cluster, table, tasks, JobOptions());

  ASSERT_EQ(result.task_records.size(), 3u);
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].start_time, 0.0);
  EXPECT_DOUBLE_EQ(result.task_records[2].start_time, 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
  EXPECT_EQ(result.jobs.jobs, 1u);
  EXPECT_EQ(result.jobs.jobs_on_time, 1u);  // last finisher at 20 <= 20.5
  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.weighted_total, 1.0);  // one job, counted once
  EXPECT_EQ(result.weighted_completed, 1.0);
}

TEST_F(JobEngineTest, PerJobDeadlineJudgesTheLastFinisher) {
  // Two cores, a map->reduce job, and two independent fillers that arrive
  // while the map runs. Both fillers start the instant the map frees the
  // cores, so the reduce queues behind one of them and lands at t = 30 —
  // past the job's deadline of 20.5, though both map members met it. The
  // JOB is late, counted once; the map members still tally on time in the
  // task-level buckets.
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 0.0, 20.5);
  AppendStage(tasks, 0, 1, 1, 0.0, 20.5);
  tasks.push_back(Task{.id = 3, .arrival = 0.5, .deadline = 100.0});
  tasks.push_back(Task{.id = 4, .arrival = 0.6, .deadline = 100.0});

  const TrialResult result = Run(cluster, table, tasks, JobOptions());

  EXPECT_EQ(result.jobs.jobs, 3u);  // the DAG plus two degenerate jobs
  EXPECT_EQ(result.jobs.jobs_on_time, 2u);
  EXPECT_EQ(result.jobs.jobs_late, 1u);
  EXPECT_EQ(result.jobs.jobs_failed, 0u);
  // Task-level buckets: 2 map members + 2 fillers on time, the reduce late.
  EXPECT_EQ(result.completed, 4u);
  EXPECT_EQ(result.finished_late, 1u);
  ASSERT_EQ(result.task_records.size(), 5u);
  EXPECT_TRUE(result.task_records[0].on_time);
  EXPECT_TRUE(result.task_records[1].on_time);
  EXPECT_FALSE(result.task_records[2].on_time);  // the last finisher decides
  EXPECT_DOUBLE_EQ(result.task_records[2].finish_time, 30.0);
  EXPECT_EQ(result.weighted_total, 3.0);
  EXPECT_EQ(result.weighted_completed, 2.0);  // the DAG job missed
  EXPECT_EQ(result.weighted_missed, 1.0);
}

TEST_F(JobEngineTest, DomainOutageRequeuesTheWholeGang) {
  // Two single-core nodes (one fault domain each). The width-2 gang starts
  // at t = 0 across both domains; domain 0 dies at t = 5, stranding one
  // member mid-run. Under requeue recovery the WHOLE gang goes back to the
  // pending queue — the surviving member is aborted, and both re-run
  // together once the domain repairs at t = 6.
  const cluster::Cluster cluster(
      {test::SimpleNode(1, 1), test::SimpleNode(1, 1)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0, 10.0});
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 0.0, 50.0);

  TrialOptions options = JobOptions();
  options.recovery_policy = fault::RecoveryPolicy::kRequeueToScheduler;
  options.fault_domains = fault::DeriveNodeDomains(cluster);
  options.fault_schedule.events = {
      {5.0, fault::FaultEventKind::kDomainOutage, 0, 0, 0},
      {6.0, fault::FaultEventKind::kDomainRepair, 0, 0, 0},
  };
  const TrialResult result = Run(cluster, table, tasks, options);

  EXPECT_EQ(result.jobs.gangs_requeued, 1u);
  EXPECT_EQ(result.jobs.gangs_placed, 2u);  // initial start + restart
  EXPECT_EQ(result.jobs.jobs_on_time, 1u);
  EXPECT_EQ(result.jobs.jobs_failed, 0u);
  // Each member tallies once in the task buckets despite running twice.
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.missed_deadlines, 0u);
  // The slack deadline lets min-EEC pick the deepest P-state (exec
  // 10 / 0.4096 = 24.4140625); restart at t = 6 (repair) finishes both
  // members together at 30.4140625, still on time.
  EXPECT_DOUBLE_EQ(result.makespan, 30.4140625);
}

TEST_F(JobEngineTest, DropRecoveryFailsTheGangJob) {
  // Same outage under the drop baseline: the stranded member is lost, so
  // the job can never complete — it fails exactly once.
  const cluster::Cluster cluster(
      {test::SimpleNode(1, 1), test::SimpleNode(1, 1)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0, 10.0});
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 0.0, 50.0);

  TrialOptions options = JobOptions();
  options.recovery_policy = fault::RecoveryPolicy::kDropQueued;
  options.fault_domains = fault::DeriveNodeDomains(cluster);
  options.fault_schedule.events = {
      {5.0, fault::FaultEventKind::kDomainOutage, 0, 0, 0},
  };
  const TrialResult result = Run(cluster, table, tasks, options);

  EXPECT_EQ(result.jobs.jobs_failed, 1u);
  EXPECT_EQ(result.jobs.jobs_on_time, 0u);
  EXPECT_EQ(result.jobs.gangs_requeued, 0u);
  EXPECT_EQ(result.weighted_completed, 0.0);
}

TEST_F(JobEngineTest, SerialPlacementRunsGangMembersIndependently) {
  // The "serial" ablation maps gang members through the per-task pipeline:
  // on a single core the width-2 "gang" simply queues FIFO — placement
  // that the all-or-nothing path could never produce.
  const cluster::Cluster cluster = test::SingleCoreCluster();
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 2, 0.0, 50.0);

  TrialOptions options = JobOptions();
  options.jobs.placement = "serial";
  const TrialResult result = Run(cluster, table, tasks, options);

  EXPECT_EQ(result.completed, 2u);
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);  // [0,10) then [10,20)
  EXPECT_EQ(result.jobs.jobs_on_time, 1u);
  EXPECT_EQ(result.jobs.gangs_placed, 0u);  // no gang machinery engaged
}

TEST_F(JobEngineTest, InfeasiblyWideGangFailsItsJob) {
  // A width-3 gang on a two-core cluster can never start; the job fails
  // (abandoned, not left pending forever) and the trial terminates.
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  std::vector<Task> tasks;
  AppendStage(tasks, 0, 0, 3, 0.0, 50.0);

  const TrialResult result = Run(cluster, table, tasks, JobOptions());

  EXPECT_EQ(result.jobs.jobs_failed, 1u);
  EXPECT_EQ(result.jobs.gangs_abandoned, 1u);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.missed_deadlines, 3u);
}

TEST_F(JobEngineTest, AllDegenerateWorkloadDemotesToTaskPathBitwise) {
  // jobs.enabled with an all-degenerate workload must take the exact
  // task-level path: identical result fields and a silent JobStats block.
  const cluster::Cluster cluster({test::SimpleNode(1, 2)});
  const workload::TaskTypeTable table = DeltaTable(cluster, {10.0});
  const std::vector<Task> tasks = {
      Task{.id = 0, .arrival = 0.0, .deadline = 15.0},
      Task{.id = 1, .arrival = 1.0, .deadline = 12.0},
      Task{.id = 2, .arrival = 2.0, .deadline = 40.0},
  };
  TrialOptions plain;
  plain.energy_budget = 1e9;
  const TrialResult off = Run(cluster, table, tasks, plain);
  TrialOptions jobs = plain;
  jobs.jobs.enabled = true;
  const TrialResult on = Run(cluster, table, tasks, jobs);

  EXPECT_FALSE(on.jobs.enabled);  // demoted: no job ever non-degenerate
  EXPECT_EQ(on.jobs, JobStats{});
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_EQ(on.missed_deadlines, off.missed_deadlines);
  EXPECT_EQ(on.weighted_completed, off.weighted_completed);
  EXPECT_EQ(on.total_energy, off.total_energy);
  EXPECT_EQ(on.makespan, off.makespan);
}

}  // namespace
}  // namespace ecdra::sim
