#include "robustness/robustness.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ecdra::robustness {
namespace {

TEST(OnTimeProbability, IdleCoreIsExecCdfAtRemainingSlack) {
  const CoreQueueModel core;
  const pmf::Pmf exec = test::TwoPoint(10.0, 20.0);
  // At now = 5, deadline 16: only the 10-unit execution (finishing at 15)
  // meets it.
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 5.0, exec, 16.0), 0.5);
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 5.0, exec, 26.0), 1.0);
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 5.0, exec, 14.0), 0.0);
}

TEST(OnTimeProbability, BusyCoreCombinesReadyAndExec) {
  const pmf::Pmf running = pmf::Pmf::Delta(10.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &running, 100.0}, 0.0);
  const pmf::Pmf exec = test::TwoPoint(5.0, 15.0);
  // Ready at 10; completion at 15 or 25.
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 0.0, exec, 20.0), 0.5);
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 0.0, exec, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 0.0, exec, 14.0), 0.0);
}

TEST(OnTimeProbability, DeadlineBoundaryIsInclusive) {
  const CoreQueueModel core;
  const pmf::Pmf exec = pmf::Pmf::Delta(10.0);
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 0.0, exec, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(OnTimeProbability(core, 0.0, exec, 9.999), 0.0);
}

TEST(CoreRobustness, IdleCoreContributesZero) {
  const CoreQueueModel core;
  EXPECT_DOUBLE_EQ(CoreRobustness(core, 0.0), 0.0);
}

TEST(CoreRobustness, SumsPerTaskOnTimeProbabilities) {
  const pmf::Pmf run = test::TwoPoint(10.0, 20.0);
  const pmf::Pmf queued = pmf::Pmf::Delta(5.0);
  CoreQueueModel core;
  // Running task: deadline 15 -> P = 0.5. Queued task: completes at 15 or
  // 25; deadline 16 -> P = 0.5.
  core.StartTask(ModeledTask{0, &run, 15.0}, 0.0);
  core.Enqueue(ModeledTask{1, &queued, 16.0});
  EXPECT_DOUBLE_EQ(CoreRobustness(core, 0.0), 1.0);
}

TEST(CoreRobustness, LateRunningTaskDecaysToZeroProbability) {
  const pmf::Pmf run = test::TwoPoint(10.0, 20.0);
  CoreQueueModel core;
  core.StartTask(ModeledTask{0, &run, 15.0}, 0.0);
  // At t = 10.5, the 10-impulse is past: completion is surely at 20 > 15.
  EXPECT_DOUBLE_EQ(CoreRobustness(core, 10.5), 0.0);
  // At t = 2 the completion pmf is still {10: .5, 20: .5}.
  EXPECT_DOUBLE_EQ(CoreRobustness(core, 2.0), 0.5);
}

TEST(SystemRobustness, AddsAcrossCores) {
  const pmf::Pmf run = pmf::Pmf::Delta(10.0);
  std::vector<CoreQueueModel> cores(3);
  cores[0].StartTask(ModeledTask{0, &run, 15.0}, 0.0);  // P = 1
  cores[1].StartTask(ModeledTask{1, &run, 5.0}, 0.0);   // P = 0
  // cores[2] idle.
  EXPECT_DOUBLE_EQ(SystemRobustness(cores, 0.0), 1.0);
}

TEST(SystemRobustness, EqualsExpectedOnTimeCompletions) {
  // rho(t) is an expectation: for independent two-point tasks the sum of
  // the individual probabilities.
  const pmf::Pmf run = test::TwoPoint(8.0, 12.0);
  std::vector<CoreQueueModel> cores(2);
  cores[0].StartTask(ModeledTask{0, &run, 10.0}, 0.0);  // P = 0.5
  cores[1].StartTask(ModeledTask{1, &run, 10.0}, 0.0);  // P = 0.5
  cores[1].Enqueue(ModeledTask{2, &run, 17.0});
  // Task 2 completes at 16, 20, or 24 (probs .25, .5, .25); deadline 17.
  EXPECT_DOUBLE_EQ(SystemRobustness(cores, 0.0), 0.5 + 0.5 + 0.25);
}

TEST(OnTimeProbability, ImprovesWithEarlierReadyCore) {
  const pmf::Pmf busy_run = pmf::Pmf::Delta(30.0);
  CoreQueueModel idle_core;
  CoreQueueModel busy_core;
  busy_core.StartTask(ModeledTask{0, &busy_run, 100.0}, 0.0);
  const pmf::Pmf exec = test::TwoPoint(10.0, 20.0);
  const double p_idle = OnTimeProbability(idle_core, 0.0, exec, 25.0);
  const double p_busy = OnTimeProbability(busy_core, 0.0, exec, 25.0);
  EXPECT_GT(p_idle, p_busy);
}

}  // namespace
}  // namespace ecdra::robustness
