#include "pmf/pmf.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "validate/validation.hpp"

namespace ecdra::pmf {
namespace {

Pmf RandomPmf(util::RngStream& rng, std::size_t n) {
  std::vector<Impulse> impulses;
  impulses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    impulses.push_back(
        Impulse{rng.UniformReal(0.0, 100.0), rng.UniformReal(0.01, 1.0)});
  }
  return Pmf::FromImpulses(std::move(impulses), n);
}

double Mass(const Pmf& pmf) {
  double mass = 0.0;
  for (const Impulse& imp : pmf.impulses()) mass += imp.prob;
  return mass;
}

TEST(Pmf, DeltaIsDegenerate) {
  const Pmf d = Pmf::Delta(5.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Expectation(), 5.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.Min(), 5.0);
  EXPECT_DOUBLE_EQ(d.Max(), 5.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(4.999), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(5.0), 1.0);
}

TEST(Pmf, FromImpulsesSortsMergesNormalizes) {
  const Pmf pmf = Pmf::FromImpulses({{3.0, 2.0}, {1.0, 1.0}, {3.0, 1.0}});
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_DOUBLE_EQ(pmf.impulses()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(pmf.impulses()[0].prob, 0.25);
  EXPECT_DOUBLE_EQ(pmf.impulses()[1].value, 3.0);
  EXPECT_DOUBLE_EQ(pmf.impulses()[1].prob, 0.75);
}

TEST(Pmf, FromImpulsesDropsNonPositiveProbabilities) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 0.0}, {2.0, 1.0}, {3.0, -0.5}});
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf.impulses()[0].value, 2.0);
}

TEST(Pmf, FromImpulsesRejectsEmptyAndNonFinite) {
  EXPECT_THROW((void)Pmf::FromImpulses({}), std::invalid_argument);
  EXPECT_THROW((void)Pmf::FromImpulses({{1.0, 0.0}}), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)Pmf::FromImpulses({{inf, 1.0}}), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)Pmf::FromImpulses({{1.0, nan}}), std::invalid_argument);
}

TEST(Pmf, ExpectationAndVariance) {
  const Pmf pmf = Pmf::FromImpulses({{0.0, 1.0}, {10.0, 1.0}});
  EXPECT_DOUBLE_EQ(pmf.Expectation(), 5.0);
  EXPECT_DOUBLE_EQ(pmf.Variance(), 25.0);
}

TEST(Pmf, CdfAtIsRightContinuousStep) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(pmf.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(pmf.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(pmf.CdfAt(1.5), 0.25);
  EXPECT_DOUBLE_EQ(pmf.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(pmf.CdfAt(3.0), 1.0);
  EXPECT_DOUBLE_EQ(pmf.CdfAt(99.0), 1.0);
}

TEST(Pmf, ShiftMovesSupportOnly) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 3.0}});
  const Pmf shifted = pmf.Shift(10.0);
  EXPECT_DOUBLE_EQ(shifted.Expectation(), pmf.Expectation() + 10.0);
  EXPECT_NEAR(shifted.Variance(), pmf.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(shifted.Min(), 11.0);
}

TEST(Pmf, ScaleValuesScalesMoments) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 3.0}});
  const Pmf scaled = pmf.ScaleValues(2.0);
  EXPECT_DOUBLE_EQ(scaled.Expectation(), 2.0 * pmf.Expectation());
  EXPECT_NEAR(scaled.Variance(), 4.0 * pmf.Variance(), 1e-12);
  EXPECT_THROW((void)pmf.ScaleValues(0.0), std::invalid_argument);
}

TEST(Pmf, TruncateBelowRenormalizes) {
  const Pmf pmf =
      Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}, {4.0, 1.0}});
  const TruncateResult result = pmf.TruncateBelow(2.5);
  EXPECT_DOUBLE_EQ(result.retained_mass, 0.5);
  ASSERT_EQ(result.pmf.size(), 2u);
  EXPECT_DOUBLE_EQ(result.pmf.impulses()[0].prob, 0.5);
  EXPECT_NEAR(Mass(result.pmf), 1.0, 1e-12);
}

TEST(Pmf, TruncateBelowKeepsImpulsesAtExactlyT) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  const TruncateResult result = pmf.TruncateBelow(2.0);
  EXPECT_DOUBLE_EQ(result.retained_mass, 0.5);
  EXPECT_DOUBLE_EQ(result.pmf.Min(), 2.0);
}

TEST(Pmf, TruncateBelowPastEverythingYieldsImminentDelta) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  const TruncateResult result = pmf.TruncateBelow(50.0);
  EXPECT_DOUBLE_EQ(result.retained_mass, 0.0);
  EXPECT_EQ(result.pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(result.pmf.Expectation(), 50.0);
}

TEST(Pmf, TruncateBelowAtToleranceEdgeReportsTrueRetainedMass) {
  // The surviving mass is positive but at most kMassTolerance: the result
  // falls back to Delta(t) (renormalizing ~1e-10 of mass is meaningless),
  // but retained_mass must report the true tiny sum — the pre-fix code
  // returned 0.0, telling `retained_mass > 0` callers that no mass ever
  // existed past the cut.
  const double tiny = 0.5 * Pmf::kMassTolerance;
  const Pmf pmf = Pmf::FromRawUnchecked({{1.0, 1.0 - tiny}, {2.0, tiny}});
  const TruncateResult result = pmf.TruncateBelow(1.5);
  ASSERT_EQ(result.pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(result.pmf.impulses()[0].value, 1.5);
  EXPECT_DOUBLE_EQ(result.pmf.impulses()[0].prob, 1.0);
  EXPECT_GT(result.retained_mass, 0.0);
  EXPECT_DOUBLE_EQ(result.retained_mass, tiny);
}

TEST(Pmf, ShiftRecoalescesValuesCollapsedByAbsorption) {
  // A gap of 2^-30 between support values is far below the ulp of 1e10 + 1,
  // so shifting by 1e10 absorbs it: both values land on the same double.
  // Pre-fix, Shift kept both impulses, breaking the strictly-increasing
  // support invariant every other constructor guarantees.
  const double gap = std::ldexp(1.0, -30);
  const Pmf pmf = Pmf::FromImpulses({{1.0, 0.25}, {1.0 + gap, 0.75}});
  ASSERT_EQ(pmf.size(), 2u);
  const Pmf shifted = pmf.Shift(1e10);
  ASSERT_EQ(shifted.size(), 1u);
  EXPECT_DOUBLE_EQ(shifted.impulses()[0].value, 1e10 + 1.0);
  EXPECT_DOUBLE_EQ(shifted.impulses()[0].prob, 1.0);
}

TEST(Pmf, ScaleValuesRecoalescesValuesCollapsedByRounding) {
  // Adjacent doubles scaled to the smallest subnormal both round to the
  // same value; the products must coalesce into one impulse.
  const double gap = std::ldexp(1.0, -52);
  const Pmf pmf = Pmf::FromImpulses({{1.0, 0.5}, {1.0 + gap, 0.5}});
  ASSERT_EQ(pmf.size(), 2u);
  const Pmf scaled = pmf.ScaleValues(std::ldexp(1.0, -1074));
  ASSERT_EQ(scaled.size(), 1u);
  EXPECT_DOUBLE_EQ(scaled.impulses()[0].prob, 1.0);
}

TEST(Pmf, ShiftAndScaleValuesRunTheDeepAudit) {
  // Shift/ScaleValues used to skip the deep-validation hook every other
  // pmf constructor runs; both must now report checks to an active deep
  // validator.
  validate::TrialValidator validator(validate::ValidationMode::kDeep);
  {
    validate::ValidatorScope scope(&validator);
    const Pmf pmf = Pmf::FromImpulses({{1.0, 0.5}, {2.0, 0.5}});
    const auto before_shift = validator.report().checks_run;
    (void)pmf.Shift(3.0);
    const auto after_shift = validator.report().checks_run;
    EXPECT_GT(after_shift, before_shift);
    (void)pmf.ScaleValues(2.0);
    EXPECT_GT(validator.report().checks_run, after_shift);
  }
  EXPECT_TRUE(validator.report().ok());
}

TEST(Pmf, InPlaceVariantsMatchConstOverloads) {
  util::RngStream rng(99);
  for (int i = 0; i < 20; ++i) {
    const Pmf pmf = RandomPmf(rng, 16);
    Pmf shifted = pmf;
    shifted.ShiftInPlace(12.5);
    EXPECT_EQ(shifted, pmf.Shift(12.5));
    Pmf scaled = pmf;
    scaled.ScaleValuesInPlace(1.375);
    EXPECT_EQ(scaled, pmf.ScaleValues(1.375));
    Pmf truncated = pmf;
    const double cut = pmf.impulses()[pmf.size() / 2].value;
    const double retained = truncated.TruncateBelowInPlace(cut);
    const TruncateResult reference = pmf.TruncateBelow(cut);
    EXPECT_EQ(truncated, reference.pmf);
    EXPECT_DOUBLE_EQ(retained, reference.retained_mass);
  }
}

TEST(Pmf, SampleStaysOnSupportAndFollowsProbabilities) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 0.2}, {5.0, 0.8}});
  util::RngStream rng(123);
  int fives = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = pmf.Sample(rng);
    ASSERT_TRUE(v == 1.0 || v == 5.0);
    if (v == 5.0) ++fives;
  }
  EXPECT_NEAR(static_cast<double>(fives) / n, 0.8, 0.02);
}

TEST(Pmf, CompactPreservesMassAndMean) {
  util::RngStream rng(7);
  const Pmf pmf = RandomPmf(rng, 256);
  const Pmf compact = pmf.Compact(16);
  EXPECT_LE(compact.size(), 16u);
  EXPECT_NEAR(Mass(compact), 1.0, 1e-12);
  EXPECT_NEAR(compact.Expectation(), pmf.Expectation(), 1e-9);
  EXPECT_DOUBLE_EQ(compact.Min() >= pmf.Min() ? 1.0 : 0.0, 1.0);
  EXPECT_LE(compact.Max(), pmf.Max());
}

TEST(Pmf, CompactIsNoOpWhenSmallEnough) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  EXPECT_EQ(pmf.Compact(10), pmf);
}

TEST(Pmf, CompactToOneImpulseGivesMean) {
  util::RngStream rng(9);
  const Pmf pmf = RandomPmf(rng, 32);
  const Pmf one = pmf.Compact(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NEAR(one.Expectation(), pmf.Expectation(), 1e-9);
}

class CompactSweep : public ::testing::TestWithParam<
                         std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(CompactSweep, BoundMassAndMeanHoldForAllSizes) {
  const auto [seed, bound] = GetParam();
  util::RngStream rng(seed);
  const Pmf pmf = RandomPmf(rng, 200);
  const Pmf compact = pmf.Compact(bound);
  EXPECT_LE(compact.size(), bound);
  EXPECT_NEAR(Mass(compact), 1.0, 1e-12);
  EXPECT_NEAR(compact.Expectation(), pmf.Expectation(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBounds, CompactSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(1u, 2u, 7u, 32u, 64u, 199u)));

TEST(Convolve, DeltaIsIdentity) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {4.0, 1.0}});
  const Pmf conv = Convolve(pmf, Pmf::Delta(0.0));
  EXPECT_EQ(conv, pmf);
}

TEST(Convolve, DeltaShifts) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {4.0, 1.0}});
  const Pmf conv = Convolve(pmf, Pmf::Delta(2.5));
  EXPECT_DOUBLE_EQ(conv.Min(), 3.5);
  EXPECT_DOUBLE_EQ(conv.Max(), 6.5);
}

TEST(Convolve, TwoCoinsGiveBinomial) {
  const Pmf coin = Pmf::FromImpulses({{0.0, 0.5}, {1.0, 0.5}});
  const Pmf sum = Convolve(coin, coin);
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum.impulses()[0].prob, 0.25);
  EXPECT_DOUBLE_EQ(sum.impulses()[1].prob, 0.5);
  EXPECT_DOUBLE_EQ(sum.impulses()[2].prob, 0.25);
}

class ConvolveProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvolveProperties, MomentsAddAndSupportBounds) {
  util::RngStream rng(GetParam());
  const Pmf x = RandomPmf(rng, 24);
  const Pmf y = RandomPmf(rng, 24);
  // Exact convolution (no compaction).
  const Pmf exact = Convolve(x, y, 24 * 24);
  EXPECT_NEAR(exact.Expectation(), x.Expectation() + y.Expectation(), 1e-9);
  EXPECT_NEAR(exact.Variance(), x.Variance() + y.Variance(), 1e-6);
  EXPECT_NEAR(exact.Min(), x.Min() + y.Min(), 1e-9);
  EXPECT_NEAR(exact.Max(), x.Max() + y.Max(), 1e-9);
  EXPECT_NEAR(Mass(exact), 1.0, 1e-9);
  // Compacted convolution preserves mass and mean.
  const Pmf compacted = Convolve(x, y, 32);
  EXPECT_LE(compacted.size(), 32u);
  EXPECT_NEAR(compacted.Expectation(), exact.Expectation(), 1e-9);
}

TEST_P(ConvolveProperties, ProbSumLeqMatchesExactConvolutionCdf) {
  util::RngStream rng(GetParam() + 1000);
  const Pmf x = RandomPmf(rng, 20);
  const Pmf y = RandomPmf(rng, 20);
  const Pmf exact = Convolve(x, y, 20 * 20);
  for (const double t : {-5.0, 20.0, 50.0, 80.0, 110.0, 150.0, 250.0}) {
    EXPECT_NEAR(ProbSumLeq(x, y, t), exact.CdfAt(t), 1e-9) << "t=" << t;
  }
}

TEST_P(ConvolveProperties, ProbSumLeqIsSymmetric) {
  util::RngStream rng(GetParam() + 2000);
  const Pmf x = RandomPmf(rng, 15);
  const Pmf y = RandomPmf(rng, 17);
  for (const double t : {30.0, 90.0, 140.0}) {
    EXPECT_NEAR(ProbSumLeq(x, y, t), ProbSumLeq(y, x, t), 1e-9);
  }
}

/// Integer-valued random pmf: sums and differences of support values are
/// exact in floating point, so threshold ties are unambiguous.
Pmf IntegerRandomPmf(util::RngStream& rng, std::size_t n) {
  std::vector<Impulse> impulses;
  impulses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    impulses.push_back(Impulse{std::floor(rng.UniformReal(0.0, 200.0)),
                               rng.UniformReal(0.01, 1.0)});
  }
  return Pmf::FromImpulses(std::move(impulses), n);
}

TEST_P(ConvolveProperties, ProbSumLeqMatchesBruteForceAtTieBoundaries) {
  // Every pair sum x_i + y_j is a threshold where t - x_i lands exactly on
  // a support value of Y — the boundary the two-pointer sweep must resolve
  // with <=, not <. Integer supports make the tie exact; half-integer
  // probes check strictly-between thresholds on both sides.
  util::RngStream rng(GetParam() + 3000);
  const Pmf x = IntegerRandomPmf(rng, 12);
  const Pmf y = IntegerRandomPmf(rng, 12);
  const Pmf exact = Convolve(x, y, 1u << 20);  // brute force: nothing merged
  for (const Impulse& xi : x.impulses()) {
    for (const Impulse& yj : y.impulses()) {
      const double t = xi.value + yj.value;
      EXPECT_NEAR(ProbSumLeq(x, y, t), exact.CdfAt(t), 1e-12) << "t=" << t;
      EXPECT_NEAR(ProbSumLeq(x, y, t - 0.5), exact.CdfAt(t - 0.5), 1e-12)
          << "t=" << t - 0.5;
      EXPECT_NEAR(ProbSumLeq(x, y, t + 0.5), exact.CdfAt(t + 0.5), 1e-12)
          << "t=" << t + 0.5;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvolveProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Convolve, ConvolveIntoMatchesConvolveAndAllowsAliasing) {
  util::RngStream rng(321);
  const Pmf x = RandomPmf(rng, 24);
  const Pmf y = RandomPmf(rng, 24);
  const Pmf reference = Convolve(x, y);
  Pmf out;
  ConvolveInto(x, y, Pmf::kDefaultMaxImpulses, out);
  EXPECT_EQ(out, reference);
  // `out` aliasing either input is the documented suffix-chain idiom.
  Pmf acc = x;
  ConvolveInto(acc, y, Pmf::kDefaultMaxImpulses, acc);
  EXPECT_EQ(acc, reference);
  Pmf acc_rhs = y;
  ConvolveInto(x, acc_rhs, Pmf::kDefaultMaxImpulses, acc_rhs);
  EXPECT_EQ(acc_rhs, reference);
}

TEST(Convolve, KWayMergeMatchesSortBasedCrossProduct) {
  // The fused kernel must reproduce FromImpulses' sort-everything result
  // exactly: same merged support, same normalized probabilities.
  util::RngStream rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const Pmf x = RandomPmf(rng, 9);
    const Pmf y = RandomPmf(rng, 13);
    std::vector<Impulse> cross;
    for (const Impulse& xi : x.impulses()) {
      for (const Impulse& yj : y.impulses()) {
        cross.push_back(Impulse{xi.value + yj.value, xi.prob * yj.prob});
      }
    }
    const Pmf via_sort = Pmf::FromImpulses(std::move(cross), 32);
    EXPECT_EQ(Convolve(x, y, 32), via_sort);
  }
}

TEST(ProbSumLeq, ExtremeThresholds) {
  const Pmf x = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  const Pmf y = Pmf::FromImpulses({{3.0, 1.0}, {4.0, 1.0}});
  EXPECT_DOUBLE_EQ(ProbSumLeq(x, y, 3.9), 0.0);
  EXPECT_DOUBLE_EQ(ProbSumLeq(x, y, 4.0), 0.25);
  EXPECT_DOUBLE_EQ(ProbSumLeq(x, y, 6.0), 1.0);
}

TEST(Convolve, LongChainStaysNumericallyStable) {
  // Fifty compacted convolutions (a deep queue's worth): total mass and the
  // accumulated mean must not drift.
  util::RngStream rng(77);
  Pmf chain = RandomPmf(rng, 24);
  double expected_mean = chain.Expectation();
  for (int i = 0; i < 50; ++i) {
    const Pmf next = RandomPmf(rng, 24);
    expected_mean += next.Expectation();
    chain = Convolve(chain, next);
    ASSERT_LE(chain.size(), Pmf::kDefaultMaxImpulses);
  }
  EXPECT_NEAR(Mass(chain), 1.0, 1e-9);
  EXPECT_NEAR(chain.Expectation(), expected_mean, 1e-6 * expected_mean);
}

TEST(Pmf, CdfIsMonotoneNonDecreasing) {
  util::RngStream rng(88);
  const Pmf pmf = RandomPmf(rng, 40);
  double prev = -1.0;
  for (double t = pmf.Min() - 5.0; t <= pmf.Max() + 5.0; t += 1.0) {
    const double cdf = pmf.CdfAt(t);
    EXPECT_GE(cdf, prev);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(Pmf, ShiftAndScaleCompose) {
  util::RngStream rng(99);
  const Pmf pmf = RandomPmf(rng, 16);
  const Pmf a = pmf.Shift(10.0).ScaleValues(2.0);
  const Pmf b = pmf.ScaleValues(2.0).Shift(20.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.impulses()[i].value, b.impulses()[i].value, 1e-9);
    EXPECT_DOUBLE_EQ(a.impulses()[i].prob, b.impulses()[i].prob);
  }
}

TEST(Pmf, StreamOutputListsImpulses) {
  const Pmf pmf = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  std::ostringstream os;
  os << pmf;
  EXPECT_NE(os.str().find("(1, 0.5)"), std::string::npos);
}

TEST(Pmf, EmptyPmfOperationsThrow) {
  const Pmf empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.Expectation(), std::invalid_argument);
  EXPECT_THROW((void)empty.Min(), std::invalid_argument);
  EXPECT_THROW((void)empty.CdfAt(0.0), std::invalid_argument);
  EXPECT_THROW((void)empty.Shift(1.0), std::invalid_argument);
  EXPECT_THROW((void)empty.TruncateBelow(0.0), std::invalid_argument);
}

// -- MaxOf / MaxInto (gang stage completion: max across siblings) --

/// Brute-force max distribution: enumerate the |X|·|Y| cross product of
/// outcomes and merge with FromImpulses, the reference the sweep kernel
/// must reproduce.
Pmf BruteForceMax(const Pmf& x, const Pmf& y, std::size_t max_impulses) {
  std::vector<Impulse> cross;
  for (const Impulse& xi : x.impulses()) {
    for (const Impulse& yj : y.impulses()) {
      cross.push_back(
          Impulse{std::max(xi.value, yj.value), xi.prob * yj.prob});
    }
  }
  return Pmf::FromImpulses(std::move(cross), max_impulses);
}

class MaxProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxProperties, MatchesBruteForceEnumeration) {
  util::RngStream rng(GetParam() + 4000);
  const Pmf x = RandomPmf(rng, 16);
  const Pmf y = RandomPmf(rng, 20);
  const Pmf exact = MaxOf(x, y, 1u << 20);  // nothing merged
  const Pmf brute = BruteForceMax(x, y, 1u << 20);
  ASSERT_EQ(exact.size(), brute.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_DOUBLE_EQ(exact.impulses()[i].value, brute.impulses()[i].value);
    EXPECT_NEAR(exact.impulses()[i].prob, brute.impulses()[i].prob, 1e-12);
  }
  EXPECT_NEAR(Mass(exact), 1.0, 1e-9);
  // Support bounds: the max can never finish before the later-starting
  // sibling, nor after the slower one.
  EXPECT_NEAR(exact.Min(), std::max(x.Min(), y.Min()), 1e-12);
  EXPECT_NEAR(exact.Max(), std::max(x.Max(), y.Max()), 1e-12);
  EXPECT_GE(exact.Expectation() + 1e-9,
            std::max(x.Expectation(), y.Expectation()));
}

TEST_P(MaxProperties, CdfIsProductOfInputCdfs) {
  util::RngStream rng(GetParam() + 5000);
  const Pmf x = RandomPmf(rng, 12);
  const Pmf y = RandomPmf(rng, 14);
  const Pmf exact = MaxOf(x, y, 1u << 20);
  for (const double t : {-1.0, 10.0, 25.0, 50.0, 75.0, 99.0, 150.0}) {
    EXPECT_NEAR(exact.CdfAt(t), x.CdfAt(t) * y.CdfAt(t), 1e-12) << "t=" << t;
  }
}

TEST_P(MaxProperties, IsCommutative) {
  util::RngStream rng(GetParam() + 6000);
  const Pmf x = RandomPmf(rng, 15);
  const Pmf y = RandomPmf(rng, 17);
  EXPECT_EQ(MaxOf(x, y), MaxOf(y, x));
  EXPECT_EQ(MaxOf(x, y, 8), MaxOf(y, x, 8));
}

TEST_P(MaxProperties, CompactedPreservesMass) {
  util::RngStream rng(GetParam() + 7000);
  const Pmf x = RandomPmf(rng, 24);
  const Pmf y = RandomPmf(rng, 24);
  const Pmf compacted = MaxOf(x, y, 8);
  EXPECT_LE(compacted.size(), 8u);
  EXPECT_NEAR(Mass(compacted), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(MaxOf, EmptyPmfIsIdentity) {
  const Pmf x = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  const Pmf empty;
  EXPECT_EQ(MaxOf(empty, x), x);
  EXPECT_EQ(MaxOf(x, empty), x);
  EXPECT_THROW((void)MaxOf(empty, empty), std::invalid_argument);
  // The fold idiom: accumulate into a default-constructed pmf.
  Pmf acc;
  MaxInto(acc, x, Pmf::kDefaultMaxImpulses, acc);
  EXPECT_EQ(acc, x);
}

TEST(MaxOf, SingleImpulseEdgeCases) {
  const Pmf lo = Pmf::Delta(1.0);
  const Pmf hi = Pmf::Delta(5.0);
  // Deltas: the max is the later delta.
  EXPECT_EQ(MaxOf(lo, hi), hi);
  EXPECT_EQ(MaxOf(hi, lo), hi);
  EXPECT_EQ(MaxOf(lo, lo), lo);
  // A delta past the whole support collapses the other input.
  const Pmf spread = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}, {3.0, 2.0}});
  EXPECT_EQ(MaxOf(spread, Pmf::Delta(10.0)), Pmf::Delta(10.0));
  // A delta below the whole support is absorbed.
  EXPECT_EQ(MaxOf(spread, Pmf::Delta(0.5)), spread);
  // A delta inside the support truncates below it: mass at or under the
  // delta's value piles onto the delta point.
  const Pmf mixed = MaxOf(spread, Pmf::Delta(2.0));
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_DOUBLE_EQ(mixed.impulses()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(mixed.impulses()[0].prob, 0.5);
  EXPECT_DOUBLE_EQ(mixed.impulses()[1].value, 3.0);
  EXPECT_DOUBLE_EQ(mixed.impulses()[1].prob, 0.5);
}

TEST(MaxOf, SharedSupportValuesMergeExactly) {
  // Equal values in both inputs must land on one output impulse, not two.
  const Pmf x = Pmf::FromImpulses({{1.0, 1.0}, {2.0, 1.0}});
  const Pmf y = Pmf::FromImpulses({{2.0, 1.0}, {3.0, 1.0}});
  // Enumeration: (1,2)(2,2) -> 2 with mass 0.5, (1,3)(2,3) -> 3 with 0.5.
  const Pmf exact = MaxOf(x, y);
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_DOUBLE_EQ(exact.impulses()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(exact.impulses()[0].prob, 0.5);
  EXPECT_DOUBLE_EQ(exact.impulses()[1].value, 3.0);
  EXPECT_DOUBLE_EQ(exact.impulses()[1].prob, 0.5);
}

TEST(MaxOf, MaxIntoMatchesMaxOfAndAllowsAliasing) {
  util::RngStream rng(654);
  const Pmf x = RandomPmf(rng, 24);
  const Pmf y = RandomPmf(rng, 24);
  const Pmf reference = MaxOf(x, y);
  Pmf out;
  MaxInto(x, y, Pmf::kDefaultMaxImpulses, out);
  EXPECT_EQ(out, reference);
  Pmf acc = x;
  MaxInto(acc, y, Pmf::kDefaultMaxImpulses, acc);
  EXPECT_EQ(acc, reference);
  Pmf acc_rhs = y;
  MaxInto(x, acc_rhs, Pmf::kDefaultMaxImpulses, acc_rhs);
  EXPECT_EQ(acc_rhs, reference);
}

}  // namespace
}  // namespace ecdra::pmf
