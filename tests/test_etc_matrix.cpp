#include "workload/etc_matrix.hpp"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/type_bounds.hpp"

namespace ecdra::workload {
namespace {

TEST(EtcMatrix, StoresRowMajor) {
  const EtcMatrix etc(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(etc.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(etc.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(etc.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(etc.at(1, 2), 6.0);
}

TEST(EtcMatrix, ComputesMeans) {
  const EtcMatrix etc(2, 2, {1, 3, 5, 7});
  EXPECT_DOUBLE_EQ(etc.TypeMean(0), 2.0);
  EXPECT_DOUBLE_EQ(etc.TypeMean(1), 6.0);
  EXPECT_DOUBLE_EQ(etc.GrandMean(), 4.0);
}

TEST(EtcMatrix, RejectsInvalidConstruction) {
  EXPECT_THROW((void)EtcMatrix(2, 2, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW((void)EtcMatrix(0, 2, {}), std::invalid_argument);
  EXPECT_THROW((void)EtcMatrix(1, 2, {1, 0}), std::invalid_argument);
  EXPECT_THROW((void)EtcMatrix(1, 2, {1, -3}), std::invalid_argument);
}

TEST(EtcMatrix, RejectsOutOfRangeAccess) {
  const EtcMatrix etc(2, 2, {1, 2, 3, 4});
  EXPECT_THROW((void)etc.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)etc.at(0, 2), std::invalid_argument);
  EXPECT_THROW((void)etc.TypeMean(2), std::invalid_argument);
}

TEST(EtcMatrix, OutOfRangeTypeNamesTheOffenderInTheDiagnostic) {
  const EtcMatrix etc(2, 2, {1, 2, 3, 4});
  try {
    (void)etc.TypeMean(7);
    FAIL() << "expected TaskTypeRangeError";
  } catch (const TaskTypeRangeError& error) {
    EXPECT_EQ(error.type(), 7u);
    EXPECT_EQ(error.num_types(), 2u);
    const std::string what = error.what();
    EXPECT_NE(what.find("ETC matrix"), std::string::npos) << what;
    EXPECT_NE(what.find("task type 7"), std::string::npos) << what;
    EXPECT_NE(what.find("2 types"), std::string::npos) << what;
  }
}

TEST(GenerateCvb, DimensionsAndPositivity) {
  util::RngStream rng(1);
  const EtcMatrix etc = GenerateCvbMatrix(rng);
  EXPECT_EQ(etc.num_types(), 100u);
  EXPECT_EQ(etc.num_machines(), 8u);
  for (std::size_t t = 0; t < etc.num_types(); ++t) {
    for (std::size_t m = 0; m < etc.num_machines(); ++m) {
      EXPECT_GT(etc.at(t, m), 0.0);
    }
  }
}

TEST(GenerateCvb, GrandMeanNearTaskMean) {
  // E[e(t, m)] = mu_task; with 800 entries the grand mean concentrates.
  double sum = 0.0;
  const int reps = 10;
  for (std::uint64_t seed = 1; seed <= reps; ++seed) {
    util::RngStream rng(seed);
    sum += GenerateCvbMatrix(rng).GrandMean();
  }
  EXPECT_NEAR(sum / reps, 750.0, 0.05 * 750.0);
}

TEST(GenerateCvb, MachineCovWithinRow) {
  // Within a type's row, entries are Gamma with CoV V_mach = 0.25 around
  // the type mean; the pooled relative spread should be near that.
  util::RngStream rng(3);
  const EtcMatrix etc = GenerateCvbMatrix(rng);
  double pooled = 0.0;
  for (std::size_t t = 0; t < etc.num_types(); ++t) {
    const double mean = etc.TypeMean(t);
    double var = 0.0;
    for (std::size_t m = 0; m < etc.num_machines(); ++m) {
      const double d = etc.at(t, m) - mean;
      var += d * d;
    }
    var /= static_cast<double>(etc.num_machines() - 1);
    pooled += std::sqrt(var) / mean;
  }
  pooled /= static_cast<double>(etc.num_types());
  EXPECT_NEAR(pooled, 0.25, 0.05);
}

TEST(GenerateCvb, MatrixIsInconsistent) {
  // Inconsistent heterogeneity [AlS00]: machine orderings differ by type.
  util::RngStream rng(4);
  const EtcMatrix etc = GenerateCvbMatrix(rng);
  const auto best_machine = [&etc](std::size_t type) {
    std::size_t best = 0;
    for (std::size_t m = 1; m < etc.num_machines(); ++m) {
      if (etc.at(type, m) < etc.at(type, best)) best = m;
    }
    return best;
  };
  const std::size_t first = best_machine(0);
  bool any_different = false;
  for (std::size_t t = 1; t < etc.num_types(); ++t) {
    if (best_machine(t) != first) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(GenerateCvb, DeterministicPerSeed) {
  util::RngStream a(7);
  util::RngStream b(7);
  const EtcMatrix ma = GenerateCvbMatrix(a);
  const EtcMatrix mb = GenerateCvbMatrix(b);
  for (std::size_t t = 0; t < ma.num_types(); ++t) {
    for (std::size_t m = 0; m < ma.num_machines(); ++m) {
      EXPECT_DOUBLE_EQ(ma.at(t, m), mb.at(t, m));
    }
  }
}

TEST(GenerateCvb, HonorsCustomOptions) {
  CvbOptions options;
  options.num_task_types = 5;
  options.num_machines = 3;
  options.task_mean = 100.0;
  util::RngStream rng(9);
  const EtcMatrix etc = GenerateCvbMatrix(rng, options);
  EXPECT_EQ(etc.num_types(), 5u);
  EXPECT_EQ(etc.num_machines(), 3u);
}

TEST(GenerateCvb, RejectsInvalidOptions) {
  CvbOptions options;
  options.task_mean = 0.0;
  util::RngStream rng(1);
  EXPECT_THROW((void)GenerateCvbMatrix(rng, options), std::invalid_argument);
  options = CvbOptions{};
  options.task_cov = 0.0;
  EXPECT_THROW((void)GenerateCvbMatrix(rng, options), std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::workload
