#include "sim/engine.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "test_support.hpp"

namespace ecdra::sim {
namespace {

/// Deterministic single-type table for a cluster built from SimpleNode()s:
/// execution time on node n at P-state s is `base[n] * time_multiplier(s)`
/// exactly (delta pmfs), so every event time is hand-computable.
workload::TaskTypeTable DeltaTable(const cluster::Cluster& cluster,
                                   const std::vector<double>& base) {
  std::vector<pmf::Pmf> pmfs;
  for (std::size_t node = 0; node < cluster.num_nodes(); ++node) {
    for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
      pmfs.push_back(pmf::Pmf::Delta(
          base[node] * cluster.node(node).pstates[s].time_multiplier));
    }
  }
  return workload::TaskTypeTable(1, cluster.num_nodes(), std::move(pmfs));
}

/// Filter that removes every candidate (to force discards).
class RejectAllFilter final : public core::Filter {
 public:
  void Apply(core::MappingContext& ctx) override { ctx.candidates().clear(); }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "reject-all";
  }
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : cluster_(test::SingleCoreCluster()), table_(DeltaTable(cluster_, {10.0})) {}

  [[nodiscard]] core::ImmediateModeScheduler Scheduler(
      std::size_t window, std::vector<std::unique_ptr<core::Filter>> filters =
                              {}) {
    return core::ImmediateModeScheduler(
        cluster_, table_, core::MakeHeuristic("SQ", util::RngStream(1)),
        std::move(filters), 1e9, window);
  }

  [[nodiscard]] TrialResult Run(std::vector<workload::Task> tasks,
                                core::ImmediateModeScheduler& scheduler,
                                TrialOptions options) {
    Engine engine(cluster_, table_, std::move(tasks), scheduler, options,
                  util::RngStream(7));
    return engine.Run();
  }

  // SimpleNode P-state powers (efficiency 1.0).
  static constexpr double kP0Power = 100.0;
  // P4: ACL * V_low^2 * f4 = (100 / 2.25) * 1.0 * 0.4096.
  static constexpr double kP4Power = 100.0 / 2.25 * 0.4096;

  cluster::Cluster cluster_;
  workload::TaskTypeTable table_;
};

TEST_F(EngineTest, SingleTaskCompletesOnTimeWithExactEnergy) {
  auto scheduler = Scheduler(1);
  TrialOptions options;
  options.energy_budget = 1e9;
  options.collect_task_records = true;
  const TrialResult result =
      Run({workload::Task{0, 0, 1.0, 20.0}}, scheduler, options);

  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.missed_deadlines, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 11.0);  // arrive 1, SQ picks P0, exec 10
  // Idle at P4 for [0,1), busy at P0 for [1,11).
  EXPECT_NEAR(result.total_energy, 1.0 * kP4Power + 10.0 * kP0Power, 1e-9);
  EXPECT_FALSE(result.energy_exhausted_at.has_value());

  ASSERT_EQ(result.task_records.size(), 1u);
  const TaskRecord& record = result.task_records[0];
  EXPECT_TRUE(record.assigned);
  EXPECT_EQ(record.pstate, 0u);
  EXPECT_DOUBLE_EQ(record.start_time, 1.0);
  EXPECT_DOUBLE_EQ(record.finish_time, 11.0);
  EXPECT_TRUE(record.on_time);
  EXPECT_TRUE(record.within_energy);
  EXPECT_DOUBLE_EQ(record.rho_at_assignment, 1.0);  // delta pmf, loose deadline
}

TEST_F(EngineTest, TasksQueueFifoOnABusyCore) {
  auto scheduler = Scheduler(2);
  TrialOptions options;
  options.energy_budget = 1e9;
  options.collect_task_records = true;
  const TrialResult result = Run({workload::Task{0, 0, 0.0, 50.0},
                                  workload::Task{1, 0, 1.0, 50.0}},
                                 scheduler, options);
  EXPECT_EQ(result.completed, 2u);
  // Task 0: [0, 10). Task 1 waits, runs [10, 20).
  EXPECT_DOUBLE_EQ(result.task_records[1].start_time, 10.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].finish_time, 20.0);
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
}

TEST_F(EngineTest, LateTaskCountsAsMissed) {
  auto scheduler = Scheduler(1);
  TrialOptions options;
  options.energy_budget = 1e9;
  const TrialResult result =
      Run({workload::Task{0, 0, 0.0, 5.0}}, scheduler, options);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.finished_late, 1u);
  EXPECT_EQ(result.missed_deadlines, 1u);
}

TEST_F(EngineTest, DeadlineBoundaryIsInclusive) {
  auto scheduler = Scheduler(1);
  TrialOptions options;
  options.energy_budget = 1e9;
  const TrialResult result =
      Run({workload::Task{0, 0, 0.0, 10.0}}, scheduler, options);
  EXPECT_EQ(result.completed, 1u);  // finishes exactly at its deadline
}

TEST_F(EngineTest, EnergyExhaustionMakesOnTimeTaskNotCount) {
  auto scheduler = Scheduler(1);
  TrialOptions options;
  // Budget covers idle [0,1) plus 4 seconds at P0: exhausts at t = 5.
  options.energy_budget = 1.0 * kP4Power + 4.0 * kP0Power;
  options.collect_task_records = true;
  const TrialResult result =
      Run({workload::Task{0, 0, 1.0, 20.0}}, scheduler, options);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.on_time_but_over_budget, 1u);
  ASSERT_TRUE(result.energy_exhausted_at.has_value());
  EXPECT_NEAR(*result.energy_exhausted_at, 5.0, 1e-9);
  EXPECT_TRUE(result.task_records[0].on_time);
  EXPECT_FALSE(result.task_records[0].within_energy);
}

TEST_F(EngineTest, TaskFinishingExactlyAtExhaustionCounts) {
  auto scheduler = Scheduler(1);
  TrialOptions options;
  options.energy_budget = 1.0 * kP4Power + 10.0 * kP0Power;  // exhausts at 11
  const TrialResult result =
      Run({workload::Task{0, 0, 1.0, 20.0}}, scheduler, options);
  EXPECT_EQ(result.completed, 1u);
}

TEST_F(EngineTest, DiscardedTasksNeverExecute) {
  std::vector<std::unique_ptr<core::Filter>> filters;
  filters.push_back(std::make_unique<RejectAllFilter>());
  auto scheduler = Scheduler(1, std::move(filters));
  TrialOptions options;
  options.energy_budget = 1e9;
  options.collect_task_records = true;
  const TrialResult result =
      Run({workload::Task{0, 0, 1.0, 20.0}}, scheduler, options);
  EXPECT_EQ(result.discarded, 1u);
  EXPECT_EQ(result.missed_deadlines, 1u);
  EXPECT_FALSE(result.task_records[0].assigned);
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);  // only the arrival event
  // Pure idle draw.
  EXPECT_NEAR(result.total_energy, 1.0 * kP4Power, 1e-9);
}

TEST_F(EngineTest, IdlePolicyStayKeepsLastPStateAndBurnsMore) {
  TrialOptions deepest;
  deepest.energy_budget = 1e9;
  TrialOptions stay = deepest;
  stay.idle_policy = IdlePolicy::kStayAtLast;

  // Two tasks separated by a long idle gap.
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 1e6},
                                          workload::Task{1, 0, 100.0, 1e6}};
  auto s1 = Scheduler(2);
  const TrialResult a = Run(tasks, s1, deepest);
  auto s2 = Scheduler(2);
  const TrialResult b = Run(tasks, s2, stay);
  // Idle gap [10, 100) at P4 vs at P0.
  EXPECT_NEAR(b.total_energy - a.total_energy, 90.0 * (kP0Power - kP4Power),
              1e-9);
}

TEST_F(EngineTest, EnergyAccountingIncludesTrailingIdleUntilLastFinish) {
  const cluster::Cluster two_cores({test::SimpleNode(1, 2)});
  auto table = DeltaTable(two_cores, {10.0});
  core::ImmediateModeScheduler scheduler(
      two_cores, table, core::MakeHeuristic("SQ", util::RngStream(1)), {},
      1e9, 2);
  TrialOptions options;
  options.energy_budget = 1e9;
  // Task 0 on core A [0,10); task 1 arrives at 5, goes to idle core B [5,15).
  Engine engine(two_cores, table,
                {workload::Task{0, 0, 0.0, 1e6}, workload::Task{1, 0, 5.0, 1e6}},
                scheduler, options, util::RngStream(7));
  const TrialResult result = engine.Run();
  EXPECT_DOUBLE_EQ(result.makespan, 15.0);
  // Core A: P0 [0,10), P4 [10,15). Core B: P4 [0,5), P0 [5,15).
  const double expected = 10.0 * kP0Power + 5.0 * kP4Power  // core A
                          + 5.0 * kP4Power + 10.0 * kP0Power;  // core B
  EXPECT_NEAR(result.total_energy, expected, 1e-9);
}

TEST_F(EngineTest, StochasticDurationsComeFromTheExecPmf) {
  // Two-point pmf: finishes at 5 or 15 (p = 0.5 each); over many seeds both
  // outcomes appear and nothing else.
  std::vector<pmf::Pmf> pmfs;
  for (cluster::PStateIndex s = 0; s < cluster::kNumPStates; ++s) {
    const double mult = cluster_.node(0).pstates[s].time_multiplier;
    pmfs.push_back(test::TwoPoint(5.0 * mult, 15.0 * mult));
  }
  workload::TaskTypeTable table(1, 1, std::move(pmfs));
  int fast = 0;
  const int reps = 60;
  for (int seed = 0; seed < reps; ++seed) {
    core::ImmediateModeScheduler scheduler(
        cluster_, table, core::MakeHeuristic("SQ", util::RngStream(1)), {},
        1e9, 1);
    TrialOptions options;
    options.energy_budget = 1e9;
    Engine engine(cluster_, table, {workload::Task{0, 0, 0.0, 1e6}}, scheduler,
                  options, util::RngStream(static_cast<std::uint64_t>(seed)));
    const double makespan = engine.Run().makespan;
    ASSERT_TRUE(std::fabs(makespan - 5.0) < 1e-9 ||
                std::fabs(makespan - 15.0) < 1e-9);
    if (makespan < 10.0) ++fast;
  }
  EXPECT_GT(fast, 10);
  EXPECT_LT(fast, 50);
}

TEST_F(EngineTest, CancelPolicyDropsHopelessQueuedTasks) {
  // Task 0 runs [0, 10). Task 1 queues behind it with deadline 8 — already
  // hopeless when the core frees up. Task 2 queues with a loose deadline.
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 50.0},
                                          workload::Task{1, 0, 1.0, 8.0},
                                          workload::Task{2, 0, 2.0, 50.0}};
  TrialOptions options;
  options.energy_budget = 1e9;
  options.cancel_policy = CancelPolicy::kCancelHopelessQueued;
  options.collect_task_records = true;
  auto scheduler = Scheduler(3);
  const TrialResult result = Run(tasks, scheduler, options);

  EXPECT_EQ(result.cancelled, 1u);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.missed_deadlines, 1u);
  EXPECT_TRUE(result.task_records[1].cancelled);
  // Task 2 starts immediately at 10 (task 1 never runs).
  EXPECT_DOUBLE_EQ(result.task_records[2].start_time, 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
}

TEST_F(EngineTest, RunToCompletionExecutesHopelessTasks) {
  // Same scenario, paper semantics: the late task still runs and delays
  // task 2.
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 50.0},
                                          workload::Task{1, 0, 1.0, 8.0},
                                          workload::Task{2, 0, 2.0, 50.0}};
  TrialOptions options;
  options.energy_budget = 1e9;
  options.collect_task_records = true;
  auto scheduler = Scheduler(3);
  const TrialResult result = Run(tasks, scheduler, options);

  EXPECT_EQ(result.cancelled, 0u);
  EXPECT_EQ(result.finished_late, 1u);
  EXPECT_DOUBLE_EQ(result.task_records[2].start_time, 20.0);
  EXPECT_DOUBLE_EQ(result.makespan, 30.0);
}

TEST_F(EngineTest, CancellationSavesEnergy) {
  const std::vector<workload::Task> tasks{workload::Task{0, 0, 0.0, 50.0},
                                          workload::Task{1, 0, 1.0, 8.0}};
  TrialOptions run_all;
  run_all.energy_budget = 1e9;
  TrialOptions cancel = run_all;
  cancel.cancel_policy = CancelPolicy::kCancelHopelessQueued;
  auto s1 = Scheduler(2);
  auto s2 = Scheduler(2);
  const TrialResult a = Run(tasks, s1, run_all);
  const TrialResult b = Run(tasks, s2, cancel);
  // Cancelling ends the trial at t = 10 instead of executing the hopeless
  // task for another 10 s at P0.
  EXPECT_DOUBLE_EQ(a.makespan, 20.0);
  EXPECT_DOUBLE_EQ(b.makespan, 10.0);
  EXPECT_NEAR(a.total_energy - b.total_energy, 10.0 * kP0Power, 1e-9);
}

TEST_F(EngineTest, DeterministicForSameSeed) {
  std::vector<workload::Task> tasks;
  for (std::size_t i = 0; i < 20; ++i) {
    tasks.push_back(workload::Task{i, 0, static_cast<double>(i), 1e6});
  }
  auto run_once = [&] {
    auto scheduler = Scheduler(20);
    TrialOptions options;
    options.energy_budget = 1e9;
    return Run(tasks, scheduler, options);
  };
  const TrialResult a = run_once();
  const TrialResult b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

// Regression for the model/actual transition-latency skew: the queue model
// must be told the *actual* (latency-delayed) start time of a dispatched
// task, not the decision time. Task 0 pays a 5 s P4->P0 switch and truly
// runs [5, 15), so task 1 (deadline 21) finishes at 25 — late. A model that
// believed task 0 started at its decision time 0 would predict task 1
// finishing at 20 <= 21 and report rho = 1 for a task that cannot make it.
TEST_F(EngineTest, QueueModelSeesLatencyDelayedStartTimes) {
  auto scheduler = Scheduler(2);
  TrialOptions options;
  options.energy_budget = 1e9;
  options.pstate_transition_latency = 5.0;
  options.collect_task_records = true;
  const TrialResult result = Run(
      {workload::Task{0, 0, 0.0, 100.0}, workload::Task{1, 0, 1.0, 21.0}},
      scheduler, options);

  ASSERT_EQ(result.task_records.size(), 2u);
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 5.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].start_time, 15.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].finish_time, 25.0);
  EXPECT_EQ(result.finished_late, 1u);
  // The scheduler's belief at t=1 matches reality: delta(15) ready time
  // plus a 10 s execution overshoots the deadline with certainty.
  EXPECT_DOUBLE_EQ(result.task_records[1].rho_at_assignment, 0.0);
}

// The robustness trace's in-flight count covers the running task as well as
// the queued ones — with a switch in progress the dispatched task is still
// "in flight" even though execution has not begun.
TEST_F(EngineTest, RobustnessTraceCountsRunningAndQueuedTasks) {
  auto scheduler = Scheduler(3);
  TrialOptions options;
  options.energy_budget = 1e9;
  options.pstate_transition_latency = 5.0;
  options.collect_robustness_trace = true;
  const TrialResult result = Run({workload::Task{0, 0, 0.0, 1e6},
                                  workload::Task{1, 0, 1.0, 1e6},
                                  workload::Task{2, 0, 2.0, 1e6}},
                                 scheduler, options);
  ASSERT_EQ(result.robustness_trace.size(), 3u);
  EXPECT_EQ(result.robustness_trace[0].in_flight, 1u);  // running (switching)
  EXPECT_EQ(result.robustness_trace[1].in_flight, 2u);  // running + 1 queued
  EXPECT_EQ(result.robustness_trace[2].in_flight, 3u);  // running + 2 queued
}

// A power-gated core parks below every P-state, so with a non-zero DVFS
// switching delay each task dispatched to a gated-idle core pays the wake-up
// latency — and the gap between tasks draws nothing.
TEST_F(EngineTest, PowerGatedIdleWithLatencyPaysWakeUpCostPerDispatch) {
  auto scheduler = Scheduler(2);
  TrialOptions options;
  options.energy_budget = 1e9;
  options.idle_policy = IdlePolicy::kPowerGated;
  options.pstate_transition_latency = 2.0;
  options.collect_task_records = true;
  const TrialResult result = Run(
      {workload::Task{0, 0, 1.0, 100.0}, workload::Task{1, 0, 20.0, 100.0}},
      scheduler, options);

  EXPECT_EQ(result.completed, 2u);
  ASSERT_EQ(result.task_records.size(), 2u);
  // Task 0: gated idle at P4, SQ picks P0 -> wake-up switch [1, 3), exec
  // [3, 13). The core re-gates at 13, so task 1 pays the latency again:
  // switch [20, 22), exec [22, 32).
  EXPECT_DOUBLE_EQ(result.task_records[0].start_time, 3.0);
  EXPECT_DOUBLE_EQ(result.task_records[0].finish_time, 13.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].start_time, 22.0);
  EXPECT_DOUBLE_EQ(result.task_records[1].finish_time, 32.0);
  EXPECT_DOUBLE_EQ(result.makespan, 32.0);
  // Gated intervals [0, 1), [13, 20) draw nothing; each switching interval
  // draws the destination state's power: 12 s at P0 per task.
  EXPECT_NEAR(result.total_energy, 2.0 * 12.0 * kP0Power, 1e-9);
}

TEST_F(EngineTest, RejectsUnsortedOrMisnumberedTasks) {
  auto scheduler = Scheduler(2);
  TrialOptions options;
  options.energy_budget = 1e9;
  EXPECT_THROW(
      (void)Engine(cluster_, table_,
                   {workload::Task{0, 0, 5.0, 9.0}, workload::Task{1, 0, 1.0, 9.0}},
                   scheduler, options, util::RngStream(1)),
      std::invalid_argument);
  EXPECT_THROW(
      (void)Engine(cluster_, table_, {workload::Task{3, 0, 1.0, 9.0}},
                   scheduler, options, util::RngStream(1)),
      std::invalid_argument);
  TrialOptions bad;
  bad.energy_budget = 0.0;
  EXPECT_THROW((void)Engine(cluster_, table_, {}, scheduler, bad,
                            util::RngStream(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::sim
