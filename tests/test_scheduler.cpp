#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "test_support.hpp"

namespace ecdra::core {
namespace {

/// Filter that removes everything — forces discards.
class RejectAllFilter final : public Filter {
 public:
  void Apply(MappingContext& ctx) override { ctx.candidates().clear(); }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "reject-all";
  }
};

/// Filter that records the order it ran in.
class ProbeFilter final : public Filter {
 public:
  ProbeFilter(std::vector<int>& order, int id) : order_(&order), id_(id) {}
  void Apply(MappingContext&) override { order_->push_back(id_); }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "probe";
  }

 private:
  std::vector<int>* order_;
  int id_;
};

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : cluster_({test::SimpleNode(1, 2)}),
        etc_(1, 1, {100.0}),
        table_(cluster_, etc_, 0.25),
        cores_(cluster_.total_cores()) {}

  [[nodiscard]] ImmediateModeScheduler MakeScheduler(
      std::vector<std::unique_ptr<Filter>> filters, double budget = 1e9,
      std::size_t window = 10) {
    return ImmediateModeScheduler(cluster_, table_,
                                  MakeHeuristic("SQ", util::RngStream(1)),
                                  std::move(filters), budget, window);
  }

  [[nodiscard]] workload::Task TaskAt(std::size_t id, double arrival) const {
    return workload::Task{id, 0, arrival, arrival + 1000.0};
  }

  cluster::Cluster cluster_;
  workload::EtcMatrix etc_;
  workload::TaskTypeTable table_;
  std::vector<robustness::CoreQueueModel> cores_;
};

TEST_F(SchedulerTest, MapsTaskAndChargesEstimator) {
  ImmediateModeScheduler scheduler = MakeScheduler({});
  const auto chosen = scheduler.MapTask(TaskAt(0, 0.0), 0.0, cores_);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_DOUBLE_EQ(scheduler.estimator().remaining(), 1e9 - chosen->eec);
  EXPECT_EQ(scheduler.tasks_seen(), 1u);
  EXPECT_EQ(scheduler.tasks_discarded(), 0u);
}

TEST_F(SchedulerTest, DiscardsWhenFiltersEliminateEverything) {
  std::vector<std::unique_ptr<Filter>> filters;
  filters.push_back(std::make_unique<RejectAllFilter>());
  ImmediateModeScheduler scheduler = MakeScheduler(std::move(filters));
  const auto chosen = scheduler.MapTask(TaskAt(0, 0.0), 0.0, cores_);
  EXPECT_FALSE(chosen.has_value());
  EXPECT_EQ(scheduler.tasks_discarded(), 1u);
  EXPECT_DOUBLE_EQ(scheduler.estimator().remaining(), 1e9);  // no charge
}

TEST_F(SchedulerTest, RunsFiltersInOrder) {
  std::vector<int> order;
  std::vector<std::unique_ptr<Filter>> filters;
  filters.push_back(std::make_unique<ProbeFilter>(order, 1));
  filters.push_back(std::make_unique<ProbeFilter>(order, 2));
  ImmediateModeScheduler scheduler = MakeScheduler(std::move(filters));
  (void)scheduler.MapTask(TaskAt(0, 0.0), 0.0, cores_);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SchedulerTest, EnergyFilterSeesDecliningBudgetView) {
  // With a budget of ~2.2 task-energies and fair-share filtering over a
  // 2-task window, the first task passes and consumes; later fair shares
  // shrink accordingly.
  const double one_task_eec = 100.0 * 100.0;  // EET 100 x 100 W / 1.0
  std::vector<std::unique_ptr<Filter>> filters = MakeFilterChain("en");
  ImmediateModeScheduler scheduler =
      MakeScheduler(std::move(filters), 2.2 * one_task_eec, 2);
  const auto first = scheduler.MapTask(TaskAt(0, 0.0), 0.0, cores_);
  ASSERT_TRUE(first.has_value());
  const auto second = scheduler.MapTask(TaskAt(1, 1.0), 1.0, cores_);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(scheduler.estimator().remaining(),
                   2.2 * one_task_eec - first->eec - second->eec);
}

TEST_F(SchedulerTest, ThrowsWhenWindowOverflows) {
  ImmediateModeScheduler scheduler = MakeScheduler({}, 1e9, 1);
  (void)scheduler.MapTask(TaskAt(0, 0.0), 0.0, cores_);
  EXPECT_THROW((void)scheduler.MapTask(TaskAt(1, 1.0), 1.0, cores_),
               std::invalid_argument);
}

TEST_F(SchedulerTest, VariantNames) {
  EXPECT_EQ(MakeScheduler({}).VariantName(), "SQ (none)");
  EXPECT_EQ(MakeScheduler(MakeFilterChain("en")).VariantName(), "SQ (en)");
  EXPECT_EQ(MakeScheduler(MakeFilterChain("en+rob")).VariantName(),
            "SQ (en+rob)");
}

TEST_F(SchedulerTest, RejectsInvalidConstruction) {
  EXPECT_THROW((void)ImmediateModeScheduler(cluster_, table_, nullptr, {},
                                            1e9, 10),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ImmediateModeScheduler(cluster_, table_,
                                   MakeHeuristic("SQ", util::RngStream(1)),
                                   {}, 0.0, 10),
      std::invalid_argument);
  EXPECT_THROW(
      (void)ImmediateModeScheduler(cluster_, table_,
                                   MakeHeuristic("SQ", util::RngStream(1)),
                                   {}, 1e9, 0),
      std::invalid_argument);
  std::vector<std::unique_ptr<Filter>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(
      (void)ImmediateModeScheduler(cluster_, table_,
                                   MakeHeuristic("SQ", util::RngStream(1)),
                                   std::move(with_null), 1e9, 10),
      std::invalid_argument);
}

TEST_F(SchedulerTest, LastTaskStillGetsPositiveFairShare) {
  // T_left includes the current task (DESIGN.md decision 6): the final task
  // of the window must not be divided by zero / discarded spuriously.
  std::vector<std::unique_ptr<Filter>> filters = MakeFilterChain("en");
  ImmediateModeScheduler scheduler =
      MakeScheduler(std::move(filters), 1e9, 1);
  const auto chosen = scheduler.MapTask(TaskAt(0, 0.0), 0.0, cores_);
  EXPECT_TRUE(chosen.has_value());
}

}  // namespace
}  // namespace ecdra::core
