#include <sstream>

#include <gtest/gtest.h>

#include "stats/ascii_plot.hpp"
#include "stats/gnuplot_writer.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"

namespace ecdra::stats {
namespace {

TEST(Quantile, Type7KnownValues) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(data, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(Quantile(data, 0.75), 3.25);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 1.0), 7.0);
}

TEST(Quantile, SortsUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, RejectsInvalidInput) {
  EXPECT_THROW((void)Quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)Quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)Quantile({1.0}, 1.1), std::invalid_argument);
  const std::vector<double> unsorted{3.0, 1.0};
  EXPECT_THROW((void)QuantileSorted(unsorted, 0.5), std::invalid_argument);
}

TEST(Quantile, HandlesSignedProfitSamples) {
  // Per-trial net profit is signed (a starved trial loses money); the
  // quantile machinery must interpolate across the zero crossing unfazed.
  const std::vector<double> net{-252.6, -10.0, 0.0, 35.5, 110.0};
  EXPECT_DOUBLE_EQ(Quantile(net, 0.0), -252.6);
  EXPECT_DOUBLE_EQ(Quantile(net, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(net, 0.25), -10.0);
  EXPECT_DOUBLE_EQ(Quantile(net, 1.0), 110.0);
}

TEST(Summarize, ProfitSamplesKeepSignedWhiskers) {
  const BoxWhisker box = Summarize({-40.0, -20.0, 0.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(box.min, -40.0);
  EXPECT_DOUBLE_EQ(box.median, 0.0);
  EXPECT_DOUBLE_EQ(box.mean, 0.0);
  EXPECT_DOUBLE_EQ(box.lower_whisker, -40.0);
  EXPECT_DOUBLE_EQ(box.upper_whisker, 40.0);
}

TEST(Summarize, FiveNumberSummary) {
  const BoxWhisker box = Summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(box.n, 5u);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.q1, 2.0);
  EXPECT_DOUBLE_EQ(box.median, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 4.0);
  EXPECT_DOUBLE_EQ(box.max, 5.0);
  EXPECT_DOUBLE_EQ(box.mean, 3.0);
  EXPECT_DOUBLE_EQ(box.iqr(), 2.0);
  EXPECT_TRUE(box.outliers.empty());
  EXPECT_DOUBLE_EQ(box.lower_whisker, 1.0);
  EXPECT_DOUBLE_EQ(box.upper_whisker, 5.0);
}

TEST(Summarize, MedianOfEvenCountInterpolates) {
  const BoxWhisker box = Summarize({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(box.median, 2.5);
}

TEST(Summarize, FlagsTukeyOutliers) {
  // 100 is far beyond Q3 + 1.5 IQR of the bulk.
  const BoxWhisker box =
      Summarize({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 100.0});
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], 100.0);
  EXPECT_DOUBLE_EQ(box.max, 100.0);       // max still the true max
  EXPECT_LT(box.upper_whisker, 100.0);    // whisker excludes the outlier
}

TEST(Summarize, ConstantSample) {
  const BoxWhisker box = Summarize({4.0, 4.0, 4.0});
  EXPECT_DOUBLE_EQ(box.min, 4.0);
  EXPECT_DOUBLE_EQ(box.max, 4.0);
  EXPECT_DOUBLE_EQ(box.iqr(), 0.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW((void)Summarize({}), std::invalid_argument);
}

TEST(Table, AlignsColumnsInTextOutput) {
  Table table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // All lines equally indented: "value" column starts at the same offset.
  const std::size_t header_pos = out.find("value");
  const std::size_t row_pos = out.find("22");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(Table, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Num(1234.5, 1), "1234.5");
}

TEST(Table, RejectsMismatchedRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW((void)Table({}), std::invalid_argument);
}

TEST(AsciiPlot, RendersMarkersAndLabels) {
  const BoxWhisker box = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  const std::string plot = RenderBoxPlot({{"series-a", box}}, 40);
  EXPECT_NE(plot.find("series-a"), std::string::npos);
  EXPECT_NE(plot.find('['), std::string::npos);
  EXPECT_NE(plot.find(']'), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find("1.0"), std::string::npos);
  EXPECT_NE(plot.find("5.0"), std::string::npos);
}

TEST(AsciiPlot, MarksOutliers) {
  const BoxWhisker box =
      Summarize({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 100.0});
  const std::string plot = RenderBoxPlot({{"s", box}}, 60);
  EXPECT_NE(plot.find('o'), std::string::npos);
}

TEST(AsciiPlot, SharedAxisAcrossSeries) {
  const BoxWhisker lo = Summarize({0.0, 1.0, 2.0});
  const BoxWhisker hi = Summarize({98.0, 99.0, 100.0});
  const std::string plot = RenderBoxPlot({{"lo", lo}, {"hi", hi}}, 50);
  // The low series sits left, the high series right of the shared axis.
  const std::size_t lo_line = plot.find("lo");
  const std::size_t hi_line = plot.find("hi");
  const std::size_t lo_box = plot.find('#', lo_line);
  const std::size_t hi_box = plot.find('#', hi_line);
  EXPECT_LT(lo_box - lo_line, hi_box - hi_line);
}

TEST(AsciiPlot, HandlesDegenerateEqualValues) {
  const BoxWhisker box = Summarize({5.0, 5.0, 5.0});
  const std::string plot = RenderBoxPlot({{"flat", box}}, 30);
  EXPECT_NE(plot.find("flat"), std::string::npos);
}

TEST(AsciiPlot, RejectsBadInput) {
  EXPECT_THROW((void)RenderBoxPlot({}, 40), std::invalid_argument);
  const BoxWhisker box = Summarize({1.0});
  EXPECT_THROW((void)RenderBoxPlot({{"s", box}}, 4), std::invalid_argument);
}

TEST(GnuplotWriter, DataRowsFollowCandlestickConvention) {
  const BoxWhisker box = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  std::ostringstream os;
  WriteGnuplotData(os, {{"series-a", box}});
  const std::string out = os.str();
  EXPECT_NE(out.find("# x q1"), std::string::npos);
  // x=1, q1=2, whiskers 1/5, q3=4, median=3.
  EXPECT_NE(out.find("1 2 1 5 4 3 \"series-a\""), std::string::npos);
}

TEST(GnuplotWriter, ScriptReferencesDataAndOutput) {
  const BoxWhisker box = Summarize({1.0, 2.0, 3.0});
  std::ostringstream os;
  WriteGnuplotScript(os, "My title", "misses", {{"a", box}, {"b", box}},
                     "fig.dat", "fig.png");
  const std::string out = os.str();
  EXPECT_NE(out.find("set output 'fig.png'"), std::string::npos);
  EXPECT_NE(out.find("set title 'My title'"), std::string::npos);
  EXPECT_NE(out.find("candlesticks"), std::string::npos);
  EXPECT_NE(out.find("\"a\" 1"), std::string::npos);
  EXPECT_NE(out.find("\"b\" 2"), std::string::npos);
  EXPECT_NE(out.find("'fig.dat'"), std::string::npos);
}

TEST(GnuplotWriter, RejectsEmptySeries) {
  std::ostringstream os;
  EXPECT_THROW(WriteGnuplotData(os, {}), std::invalid_argument);
  EXPECT_THROW(WriteGnuplotScript(os, "t", "y", {}, "d", "p"),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecdra::stats
