#!/usr/bin/env python3
"""Compare an ecdra-bench v1 report against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--tolerance X]
    compare_bench.py BASELINE.json CURRENT.json \
        --counter NAME [--min-ratio X] [--min-base X]

Fails (exit 1) if any benchmark present in both files is more than
``tolerance`` times slower (ns_per_op) in CURRENT than in BASELINE.
Benchmarks present in only one file produce a warning, not a failure,
so adding or retiring benches does not break CI.

Quality reports (the ablation suites) carry their numbers in
``counters`` and have ``ns_per_op = 0`` on both sides; those rows skip
the timing gate. Pass ``--counter NAME`` to gate such a report on a
counter instead: every common row whose baseline value of NAME is at
least ``--min-base`` (default 1.0 — skips near-zero cells where ratios
are pure noise) must keep CURRENT/BASELINE >= ``--min-ratio``
(default 0.5, loose enough for a smoke run against a full-trial
snapshot).

The default tolerance is deliberately loose (3x): shared CI runners
have noisy clocks and the gate exists to catch order-of-magnitude
regressions (an accidental O(n^2), a dropped fast path), not 10% drift.
Tighten locally with --tolerance when bisecting a real regression.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "ecdra-bench v1":
        raise SystemExit(f"{path}: not an ecdra-bench v1 report")
    return {r["name"]: r for r in doc.get("results", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="max allowed slowdown ratio current/baseline (default: 3.0)",
    )
    parser.add_argument(
        "--counter",
        help="gate on this counters[] key instead of ns_per_op "
        "(for quality reports where ns_per_op is 0)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="min allowed current/baseline counter ratio (default: 0.5)",
    )
    parser.add_argument(
        "--min-base",
        type=float,
        default=1.0,
        help="skip counter rows whose baseline value is below this "
        "(default: 1.0)",
    )
    args = parser.parse_args()

    base = load_results(args.baseline)
    cur = load_results(args.current)

    for name in sorted(set(base) - set(cur)):
        print(f"WARNING: {name} missing from {args.current}")
    for name in sorted(set(cur) - set(base)):
        print(f"WARNING: {name} not in baseline {args.baseline}")

    failures = []
    common = sorted(set(base) & set(cur))
    if not common:
        raise SystemExit("no benchmarks in common; nothing compared")

    width = max(len(n) for n in common)
    if args.counter:
        key = args.counter
        print(f"{'benchmark':<{width}}  {'base ' + key:>18}  "
              f"{'cur ' + key:>18}  ratio")
        for name in common:
            b = base[name].get("counters", {}).get(key)
            c = cur[name].get("counters", {}).get(key)
            if b is None or c is None:
                print(f"WARNING: {name} has no counter {key!r}; skipped")
                continue
            if b < args.min_base:
                print(f"{name:<{width}}  {b:>18.1f}  {c:>18.1f}  "
                      f"(base < {args.min_base:g}; skipped)")
                continue
            ratio = c / b
            flag = ""
            if ratio < args.min_ratio:
                failures.append(name)
                flag = f"  FAIL (< {args.min_ratio:g}x)"
            print(f"{name:<{width}}  {b:>18.1f}  {c:>18.1f}  "
                  f"{ratio:5.2f}x{flag}")
        if failures:
            print(
                f"\n{len(failures)} benchmark(s) dropped {key} below "
                f"{args.min_ratio:g}x of baseline: {', '.join(failures)}"
            )
            return 1
        print(f"\nall common benchmarks kept {key} within "
              f"{args.min_ratio:g}x of baseline")
        return 0

    print(f"{'benchmark':<{width}}  {'base ns/op':>12}  {'cur ns/op':>12}  ratio")
    for name in common:
        b = base[name]["ns_per_op"]
        c = cur[name]["ns_per_op"]
        if b == 0 and c == 0:
            # Quality report row (counters only): the timing gate does not
            # apply — use --counter to gate these.
            print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  counter-only")
            continue
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > args.tolerance:
            failures.append(name)
            flag = f"  FAIL (> {args.tolerance:g}x)"
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {ratio:5.2f}x{flag}")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.tolerance:g}x: {', '.join(failures)}"
        )
        return 1
    print(f"\nall {len(common)} common benchmarks within {args.tolerance:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
