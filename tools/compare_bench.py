#!/usr/bin/env python3
"""Compare an ecdra-bench v1 report against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--tolerance X]

Fails (exit 1) if any benchmark present in both files is more than
``tolerance`` times slower (ns_per_op) in CURRENT than in BASELINE.
Benchmarks present in only one file produce a warning, not a failure,
so adding or retiring benches does not break CI.

The default tolerance is deliberately loose (3x): shared CI runners
have noisy clocks and the gate exists to catch order-of-magnitude
regressions (an accidental O(n^2), a dropped fast path), not 10% drift.
Tighten locally with --tolerance when bisecting a real regression.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "ecdra-bench v1":
        raise SystemExit(f"{path}: not an ecdra-bench v1 report")
    return {r["name"]: r for r in doc.get("results", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="max allowed slowdown ratio current/baseline (default: 3.0)",
    )
    args = parser.parse_args()

    base = load_results(args.baseline)
    cur = load_results(args.current)

    for name in sorted(set(base) - set(cur)):
        print(f"WARNING: {name} missing from {args.current}")
    for name in sorted(set(cur) - set(base)):
        print(f"WARNING: {name} not in baseline {args.baseline}")

    failures = []
    common = sorted(set(base) & set(cur))
    if not common:
        raise SystemExit("no benchmarks in common; nothing compared")

    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'base ns/op':>12}  {'cur ns/op':>12}  ratio")
    for name in common:
        b = base[name]["ns_per_op"]
        c = cur[name]["ns_per_op"]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > args.tolerance:
            failures.append(name)
            flag = f"  FAIL (> {args.tolerance:g}x)"
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {ratio:5.2f}x{flag}")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.tolerance:g}x: {', '.join(failures)}"
        )
        return 1
    print(f"\nall {len(common)} common benchmarks within {args.tolerance:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
