// Scenario example: how tight is the energy constraint?
//
// The paper sets zeta_max to exactly 1000 average-task energies, which is
// deliberately insufficient. This example sweeps the budget from 0.6x to
// 2.0x of the paper's value and shows how missed deadlines respond for an
// energy-aware configuration (LL en+rob) versus an energy-oblivious one
// (MECT none): the filtered scheduler degrades gracefully as the budget
// shrinks, while the oblivious one falls off a cliff.
//
//   ./examples/energy_budget_tradeoff [num_trials]   (default 10)
#include <cstdlib>
#include <iostream>

#include "experiment/paper_config.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace ecdra;

  const std::size_t num_trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  std::cout << "== Missed deadlines vs energy budget (" << num_trials
            << " trials per point) ==\n\n";
  stats::Table table({"budget (x paper)", "LL en+rob median",
                      "MECT none median", "LL exhausts?", "MECT exhausts?"});

  for (const double scale : {0.6, 0.8, 1.0, 1.2, 1.5, 2.0}) {
    sim::SetupOptions options = experiment::PaperSetupOptions();
    options.budget_task_count = 1000.0 * scale;
    const sim::ExperimentSetup setup =
        sim::BuildExperimentSetup(experiment::kPaperMasterSeed, options);

    sim::RunOptions run;
    run.num_trials = num_trials;
    const auto summarize = [&](const std::string& heuristic,
                               const std::string& variant,
                               std::size_t& exhausted) {
      const auto trials = sim::RunTrials(setup, heuristic, variant, run);
      std::vector<double> misses;
      exhausted = 0;
      for (const sim::TrialResult& trial : trials) {
        misses.push_back(static_cast<double>(trial.missed_deadlines));
        if (trial.energy_exhausted_at) ++exhausted;
      }
      return stats::Summarize(misses).median;
    };

    std::size_t ll_exhausted = 0, mect_exhausted = 0;
    const double ll = summarize("LL", "en+rob", ll_exhausted);
    const double mect = summarize("MECT", "none", mect_exhausted);
    table.AddRow({stats::Table::Num(scale, 1), stats::Table::Num(ll, 1),
                  stats::Table::Num(mect, 1),
                  std::to_string(ll_exhausted) + "/" +
                      std::to_string(num_trials),
                  std::to_string(mect_exhausted) + "/" +
                      std::to_string(num_trials)});
  }
  table.PrintText(std::cout);
  std::cout << "\nwith a loose budget the heuristics converge (deadline "
               "misses only); as the budget tightens, energy-awareness is "
               "what separates them.\n";
  return 0;
}
