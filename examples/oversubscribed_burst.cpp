// Scenario example: anatomy of an oversubscribed burst.
//
// Runs one trial of the paper's burst–lull–burst workload with per-task
// records and breaks the outcome down by arrival phase: during bursts the
// system is oversubscribed (queueing delays eat the deadline slack), while
// the lull is where an energy-aware scheduler banks budget for the second
// burst. Also samples the system robustness rho(t) trace — the expected
// number of on-time completions among in-flight tasks.
//
//   ./examples/oversubscribed_burst [heuristic] [variant] [trial]
#include <cstdlib>
#include <iostream>
#include <string>

#include "experiment/paper_config.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace ecdra;

  const std::string heuristic = argc > 1 ? argv[1] : "LL";
  const std::string variant = argc > 2 ? argv[2] : "en+rob";
  const std::size_t trial =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 0;

  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  sim::RunOptions options;
  options.collect_task_records = true;
  options.collect_robustness_trace = true;
  const sim::TrialResult result =
      sim::RunSingleTrial(setup, heuristic, variant, trial, options);

  std::cout << "trial " << trial << " of " << heuristic << " (" << variant
            << ") on " << setup.cluster.total_cores() << " cores\n"
            << result << "\n\n";

  // Phase breakdown: tasks 0-199 (early burst), 200-799 (lull),
  // 800-999 (late burst).
  struct Phase {
    const char* name;
    std::size_t first, last;
  };
  stats::Table table({"phase", "tasks", "completed", "late", "discarded",
                      "over budget", "mean wait"});
  for (const Phase& phase : {Phase{"early burst (fast)", 0, 199},
                             Phase{"lull (slow)", 200, 799},
                             Phase{"late burst (fast)", 800, 999}}) {
    std::size_t completed = 0, late = 0, discarded = 0, over = 0, n = 0;
    double wait = 0.0;
    std::size_t waited = 0;
    for (std::size_t id = phase.first; id <= phase.last; ++id) {
      const sim::TaskRecord& record = result.task_records[id];
      ++n;
      if (!record.assigned) {
        ++discarded;
        continue;
      }
      wait += record.start_time - record.arrival;
      ++waited;
      if (!record.on_time) {
        ++late;
      } else if (!record.within_energy) {
        ++over;
      } else {
        ++completed;
      }
    }
    table.AddRow({phase.name, std::to_string(n), std::to_string(completed),
                  std::to_string(late), std::to_string(discarded),
                  std::to_string(over),
                  waited == 0 ? "-"
                              : stats::Table::Num(
                                    wait / static_cast<double>(waited), 1)});
  }
  table.PrintText(std::cout);

  // System robustness rho(t) — the expected on-time completions among
  // in-flight tasks — sampled at arrivals and rendered as a sparkline:
  // robustness collapses when a burst outruns the cluster.
  if (!result.robustness_trace.empty()) {
    constexpr std::size_t kBins = 64;
    const double t_end = result.robustness_trace.back().time;
    std::vector<double> rho(kBins, 0.0);
    std::vector<std::size_t> counts(kBins, 0);
    double rho_max = 1.0;
    for (const sim::RobustnessSample& sample : result.robustness_trace) {
      const auto bin = std::min(
          kBins - 1, static_cast<std::size_t>(sample.time / t_end * kBins));
      rho[bin] += sample.rho;
      ++counts[bin];
    }
    for (std::size_t b = 0; b < kBins; ++b) {
      if (counts[b] > 0) rho[b] /= static_cast<double>(counts[b]);
      rho_max = std::max(rho_max, rho[b]);
    }
    static constexpr const char* kGlyphs = " .:-=+*#%@";
    std::string spark;
    for (std::size_t b = 0; b < kBins; ++b) {
      const auto level = static_cast<std::size_t>(
          rho[b] / rho_max * 9.0 + 0.5);
      spark += kGlyphs[level];
    }
    std::cout << "\nsystem robustness rho(t) over the trial (peak "
              << stats::Table::Num(rho_max, 1) << " expected on-time tasks):\n["
              << spark << "]\n burst            lull                      "
              << "                    burst\n";
  }

  if (result.energy_exhausted_at) {
    std::cout << "\nenergy budget exhausted at t = "
              << stats::Table::Num(*result.energy_exhausted_at, 0)
              << " (makespan " << stats::Table::Num(result.makespan, 0)
              << ") — completions after that instant do not count.\n";
  } else {
    std::cout << "\nenergy budget never exhausted ("
              << stats::Table::Num(
                     100.0 * result.total_energy / setup.energy_budget, 1)
              << "% used).\n";
  }
  return 0;
}
