// Command-line experiment driver: run any (heuristic, filter variant)
// configuration with custom seed/trials/policies and emit either a summary
// table or per-trial CSV — the entry point for scripting sweeps outside the
// provided bench binaries.
//
// Usage:
//   run_experiment_cli [--heuristic SQ|MECT|LL|Random] [--variant none|en|rob|en+rob]
//                      [--trials N] [--seed S] [--budget-scale X]
//                      [--idle deepest|stay|gated] [--cancel never|hopeless]
//                      [--rho-thresh P] [--csv] [--counters]
//                      [--trace-out PATH]
//                      [--fault-mtbf T] [--fault-duration T]
//                      [--recovery drop|requeue]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/paper_config.hpp"
#include "fault/recovery.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --heuristic NAME   SQ | MECT | LL | Random   (default LL)\n"
      << "  --variant NAME     none | en | rob | en+rob  (default en+rob)\n"
      << "  --trials N         Monte-Carlo trials        (default 50)\n"
      << "  --seed S           master seed               (default paper's)\n"
      << "  --budget-scale X   scale zeta_max by X       (default 1.0)\n"
      << "  --idle POLICY      deepest | stay | gated    (default deepest)\n"
      << "  --cancel POLICY    never | hopeless          (default never)\n"
      << "  --rho-thresh P     robustness threshold      (default 0.5)\n"
      << "  --csv              per-trial CSV instead of the summary table\n"
      << "  --counters         collect per-trial scheduler counters and\n"
      << "                     print the cross-trial aggregate\n"
      << "  --trace-out PATH   write a JSONL decision/energy trace (one\n"
      << "                     record per arrival; implies --counters)\n"
      << "  --fault-mtbf T     mean time to permanent core failure\n"
      << "                     (simulated seconds; 0 = fault-free, default)\n"
      << "  --fault-duration T mean outage before a failed core is repaired\n"
      << "                     (0 = failures are permanent, default)\n"
      << "  --throttle-interval T / --throttle-duration T / --throttle-floor S\n"
      << "                     transient P-state throttling (0 = off)\n"
      << "  --recovery POLICY  drop | requeue             (default drop)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecdra;

  std::string heuristic = "LL";
  std::string variant = "en+rob";
  std::uint64_t seed = experiment::kPaperMasterSeed;
  double budget_scale = 1.0;
  bool csv = false;
  sim::RunOptions run;
  run.num_trials = 50;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) Usage(argv[0]);
      return args[++i];
    };
    if (args[i] == "--heuristic") {
      heuristic = next();
    } else if (args[i] == "--variant") {
      variant = next();
    } else if (args[i] == "--trials") {
      run.num_trials = static_cast<std::size_t>(std::stoul(next()));
    } else if (args[i] == "--seed") {
      seed = std::stoull(next());
    } else if (args[i] == "--budget-scale") {
      budget_scale = std::stod(next());
    } else if (args[i] == "--idle") {
      const std::string& value = next();
      if (value == "deepest") {
        run.idle_policy = sim::IdlePolicy::kDeepestPState;
      } else if (value == "stay") {
        run.idle_policy = sim::IdlePolicy::kStayAtLast;
      } else if (value == "gated") {
        run.idle_policy = sim::IdlePolicy::kPowerGated;
      } else {
        Usage(argv[0]);
      }
    } else if (args[i] == "--cancel") {
      const std::string& value = next();
      if (value == "never") {
        run.cancel_policy = sim::CancelPolicy::kRunToCompletion;
      } else if (value == "hopeless") {
        run.cancel_policy = sim::CancelPolicy::kCancelHopelessQueued;
      } else {
        Usage(argv[0]);
      }
    } else if (args[i] == "--rho-thresh") {
      run.filter_options.robustness_threshold = std::stod(next());
    } else if (args[i] == "--csv") {
      csv = true;
    } else if (args[i] == "--counters") {
      run.collect_counters = true;
    } else if (args[i] == "--trace-out") {
      run.trace_path = next();
      run.collect_counters = true;
    } else if (args[i] == "--fault-mtbf") {
      run.fault.mtbf = std::stod(next());
    } else if (args[i] == "--fault-duration") {
      run.fault.repair_time = std::stod(next());
    } else if (args[i] == "--throttle-interval") {
      run.fault.throttle_interval = std::stod(next());
    } else if (args[i] == "--throttle-duration") {
      run.fault.throttle_duration = std::stod(next());
    } else if (args[i] == "--throttle-floor") {
      run.fault.throttle_floor =
          static_cast<std::size_t>(std::stoul(next()));
    } else if (args[i] == "--recovery") {
      run.recovery = fault::ParseRecoveryPolicy(next());
    } else {
      Usage(argv[0]);
    }
  }

  sim::SetupOptions setup_options = experiment::PaperSetupOptions();
  setup_options.budget_task_count = 1000.0 * budget_scale;
  const sim::ExperimentSetup setup =
      sim::BuildExperimentSetup(seed, setup_options);

  const std::vector<sim::TrialResult> trials =
      sim::RunTrials(setup, heuristic, variant, run);

  if (csv) {
    stats::Table table({"trial", "missed", "completed", "discarded", "late",
                        "over_budget", "cancelled", "energy", "exhausted_at",
                        "makespan"});
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const sim::TrialResult& trial = trials[i];
      table.AddRow(
          {std::to_string(i), std::to_string(trial.missed_deadlines),
           std::to_string(trial.completed), std::to_string(trial.discarded),
           std::to_string(trial.finished_late),
           std::to_string(trial.on_time_but_over_budget),
           std::to_string(trial.cancelled),
           stats::Table::Num(trial.total_energy, 0),
           trial.energy_exhausted_at
               ? stats::Table::Num(*trial.energy_exhausted_at, 1)
               : "-",
           stats::Table::Num(trial.makespan, 1)});
    }
    table.PrintCsv(std::cout);
    return 0;
  }

  std::vector<double> misses;
  misses.reserve(trials.size());
  for (const sim::TrialResult& trial : trials) {
    misses.push_back(static_cast<double>(trial.missed_deadlines));
  }
  const stats::BoxWhisker box = stats::Summarize(misses);
  std::cout << heuristic << " (" << variant << "), seed " << seed << ", "
            << run.num_trials << " trials, budget x" << budget_scale << ":\n"
            << "  missed deadlines: " << box << "\n";
  if (run.fault.enabled()) {
    const sim::SummaryStatistics fault_summary = sim::SummarizeTrials(trials);
    std::cout << "  faults (recovery=" << fault::RecoveryPolicyName(run.recovery)
              << "): mean failures " << fault_summary.mean_failures
              << ", mean tasks lost " << fault_summary.mean_tasks_lost
              << ", mean remapped " << fault_summary.mean_remapped
              << " (on time " << fault_summary.mean_remapped_on_time << ")\n";
  }
  if (run.collect_counters) {
    std::cout << '\n' << sim::SummarizeTrials(trials) << '\n';
  }
  if (!run.trace_path.empty()) {
    std::cout << "trace written to " << run.trace_path << "\n";
  }
  return 0;
}
