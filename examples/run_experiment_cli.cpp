// Command-line experiment driver: run any (heuristic, filter variant)
// configuration with custom seed/trials/policies and emit either a summary
// table or per-trial CSV — the entry point for scripting sweeps outside the
// provided bench binaries.
//
// Long runs are crash-safe: --checkpoint streams every completed trial to an
// append-only JSONL file, and --resume skips the trials already recorded
// there — the merged run is bit-identical to an uninterrupted one. See
// EXPERIMENTS.md, "Long runs: checkpoint, resume, watchdog".
//
// Every flag value is validated up front: a bad spelling or number produces
// a one-line diagnostic naming the flag and the valid choices and exits
// with status 2 (trial failures exit with status 1).
#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/factory.hpp"
#include "experiment/paper_config.hpp"
#include "fault/recovery.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"
#include "validate/validation.hpp"

namespace {

void PrintUsage(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0 << " [options]  (--flag value or --flag=value)\n"
     << "  --heuristic NAME   SQ | MECT | LL | Random   (default LL)\n"
     << "  --variant NAME     none | en | rob | en+rob  (default en+rob)\n"
     << "  --trials N         Monte-Carlo trials        (default 50)\n"
     << "  --seed S           master seed               (default paper's)\n"
     << "  --budget-scale X   scale zeta_max by X       (default 1.0)\n"
     << "  --idle POLICY      deepest | stay | gated    (default deepest)\n"
     << "  --cancel POLICY    never | hopeless          (default never)\n"
     << "  --rho-thresh P     robustness threshold      (default 0.5)\n"
     << "  --csv              per-trial CSV instead of the summary table\n"
     << "  --counters         collect per-trial scheduler counters and\n"
     << "                     print the cross-trial aggregate\n"
     << "  --trace-out PATH   write a JSONL decision/energy trace (one\n"
     << "                     record per arrival; implies --counters)\n"
     << "  --fault-mtbf T     mean time to permanent core failure\n"
     << "                     (simulated seconds; 0 = fault-free, default)\n"
     << "  --fault-duration T mean outage before a failed core is repaired\n"
     << "                     (0 = failures are permanent, default)\n"
     << "  --throttle-interval T / --throttle-duration T / --throttle-floor S\n"
     << "                     transient P-state throttling (0 = off)\n"
     << "  --recovery POLICY  drop | requeue             (default drop)\n"
     << "crash-safe harness:\n"
     << "  --checkpoint PATH  append each completed trial to a JSONL\n"
     << "                     checkpoint (header pins seed + config)\n"
     << "  --resume           skip trials already in the --checkpoint file;\n"
     << "                     the merged run is bit-identical to an\n"
     << "                     uninterrupted one\n"
     << "  --trial-timeout T  wall-clock watchdog per trial attempt, real\n"
     << "                     seconds (0 = off, default)\n"
     << "  --max-retries N    extra attempts after a failed/timed-out trial\n"
     << "                     (same substreams; default 0)\n"
     << "  --validate MODE    off | cheap | deep runtime invariant checks\n"
     << "                     (default off; violations are recorded, not\n"
     << "                     fatal)\n";
}

/// One-line usage diagnostic -> stderr, exit 2 (trial failures use exit 1).
[[noreturn]] void Fail(const std::string& message) {
  std::cerr << "run_experiment_cli: " << message << "\n";
  std::exit(2);
}

std::string JoinChoices(const std::vector<std::string>& choices) {
  std::string joined;
  for (const std::string& choice : choices) {
    if (!joined.empty()) joined += ", ";
    joined += choice;
  }
  return joined;
}

/// Strict numeric parsing: the whole value must be consumed, no locale, no
/// silent truncation — "10x", "", and "1e999" all fail with a diagnostic.
std::uint64_t ParseUint64(std::string_view flag, const std::string& value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      value.empty()) {
    Fail(std::string(flag) + ": '" + value +
         "' is not a non-negative integer");
  }
  return parsed;
}

double ParseDouble(std::string_view flag, const std::string& value) {
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      value.empty()) {
    Fail(std::string(flag) + ": '" + value + "' is not a number");
  }
  return parsed;
}

double ParseNonNegative(std::string_view flag, const std::string& value) {
  const double parsed = ParseDouble(flag, value);
  if (parsed < 0.0) {
    Fail(std::string(flag) + ": '" + value + "' must be >= 0");
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecdra;

  std::string heuristic = "LL";
  std::string variant = "en+rob";
  std::uint64_t seed = experiment::kPaperMasterSeed;
  double budget_scale = 1.0;
  bool csv = false;
  bool resume = false;
  sim::RunOptions run;
  run.num_trials = 50;

  // Split "--flag=value" into a flag and an inline value; "--flag value"
  // consumes the next argument instead.
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string flag = args[i];
    std::optional<std::string> inline_value;
    if (const std::size_t eq = flag.find('=');
        flag.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
    }
    bool value_used = false;
    const auto next = [&]() -> std::string {
      value_used = true;
      if (inline_value) return *inline_value;
      if (i + 1 >= args.size()) Fail(flag + ": missing value");
      return args[++i];
    };

    if (flag == "--help" || flag == "-h") {
      PrintUsage(std::cout, argv[0]);
      return 0;
    } else if (flag == "--heuristic") {
      heuristic = next();
      // The extended list is a superset of the paper's four heuristics.
      const std::vector<std::string>& names = core::ExtendedHeuristicNames();
      if (std::find(names.begin(), names.end(), heuristic) == names.end()) {
        Fail("--heuristic: unknown heuristic '" + heuristic +
             "' (valid: " + JoinChoices(names) + ")");
      }
    } else if (flag == "--variant") {
      variant = next();
      const std::vector<std::string>& names = core::FilterVariantNames();
      if (std::find(names.begin(), names.end(), variant) == names.end()) {
        Fail("--variant: unknown filter variant '" + variant +
             "' (valid: " + JoinChoices(names) + ")");
      }
    } else if (flag == "--trials") {
      run.num_trials = static_cast<std::size_t>(ParseUint64(flag, next()));
      if (run.num_trials == 0) Fail("--trials: must be >= 1");
    } else if (flag == "--seed") {
      seed = ParseUint64(flag, next());
    } else if (flag == "--budget-scale") {
      budget_scale = ParseDouble(flag, next());
      if (budget_scale <= 0.0) Fail("--budget-scale: must be > 0");
    } else if (flag == "--idle") {
      const std::string value = next();
      if (value == "deepest") {
        run.idle_policy = sim::IdlePolicy::kDeepestPState;
      } else if (value == "stay") {
        run.idle_policy = sim::IdlePolicy::kStayAtLast;
      } else if (value == "gated") {
        run.idle_policy = sim::IdlePolicy::kPowerGated;
      } else {
        Fail("--idle: unknown policy '" + value +
             "' (valid: deepest, stay, gated)");
      }
    } else if (flag == "--cancel") {
      const std::string value = next();
      if (value == "never") {
        run.cancel_policy = sim::CancelPolicy::kRunToCompletion;
      } else if (value == "hopeless") {
        run.cancel_policy = sim::CancelPolicy::kCancelHopelessQueued;
      } else {
        Fail("--cancel: unknown policy '" + value +
             "' (valid: never, hopeless)");
      }
    } else if (flag == "--rho-thresh") {
      run.filter_options.robustness_threshold =
          ParseNonNegative(flag, next());
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--counters") {
      run.collect_counters = true;
    } else if (flag == "--trace-out") {
      run.trace_path = next();
      run.collect_counters = true;
    } else if (flag == "--fault-mtbf") {
      run.fault.mtbf = ParseNonNegative(flag, next());
    } else if (flag == "--fault-duration") {
      run.fault.repair_time = ParseNonNegative(flag, next());
    } else if (flag == "--throttle-interval") {
      run.fault.throttle_interval = ParseNonNegative(flag, next());
    } else if (flag == "--throttle-duration") {
      run.fault.throttle_duration = ParseNonNegative(flag, next());
    } else if (flag == "--throttle-floor") {
      run.fault.throttle_floor =
          static_cast<std::size_t>(ParseUint64(flag, next()));
      if (run.fault.throttle_floor >= cluster::kNumPStates) {
        Fail("--throttle-floor: must be < " +
             std::to_string(cluster::kNumPStates));
      }
    } else if (flag == "--recovery") {
      const std::string value = next();
      try {
        run.recovery = fault::ParseRecoveryPolicy(value);
      } catch (const std::invalid_argument&) {
        Fail("--recovery: unknown policy '" + value +
             "' (valid: drop, requeue)");
      }
    } else if (flag == "--checkpoint") {
      run.checkpoint_path = next();
      if (run.checkpoint_path.empty()) Fail("--checkpoint: empty path");
    } else if (flag == "--resume") {
      resume = true;
    } else if (flag == "--trial-timeout") {
      run.trial_timeout = ParseNonNegative(flag, next());
    } else if (flag == "--max-retries") {
      run.max_attempts =
          1 + static_cast<std::size_t>(ParseUint64(flag, next()));
    } else if (flag == "--validate") {
      const std::string value = next();
      const auto mode = validate::ParseValidationMode(value);
      if (!mode) {
        Fail("--validate: unknown mode '" + value +
             "' (valid: off, cheap, deep)");
      }
      run.validation = *mode;
    } else {
      std::cerr << "run_experiment_cli: unknown flag '" << args[i] << "'\n";
      PrintUsage(std::cerr, argv[0]);
      return 2;
    }
    if (inline_value && !value_used) {
      Fail(flag + ": does not take a value");
    }
  }
  if (resume && run.checkpoint_path.empty()) {
    Fail("--resume requires --checkpoint PATH");
  }

  sim::SetupOptions setup_options = experiment::PaperSetupOptions();
  setup_options.budget_task_count = 1000.0 * budget_scale;
  const sim::ExperimentSetup setup =
      sim::BuildExperimentSetup(seed, setup_options);

  std::optional<sim::CheckpointStore> store;
  if (resume) {
    try {
      // Tolerant load: a final line cut mid-write by a crash is dropped and
      // that trial simply re-runs. Everything else (wrong schema, wrong
      // config, malformed interior record) still refuses loudly below.
      store = sim::CheckpointStore::Load(run.checkpoint_path,
                                         {.allow_partial_tail = true});
      run.resume = &*store;
      if (store->dropped_partial_tail()) {
        std::cerr << "note: dropped a checkpoint record cut mid-write; "
                     "re-running that trial\n";
      }
    } catch (const sim::CheckpointError& error) {
      std::cerr << "run_experiment_cli: cannot resume: " << error.what()
                << "\n";
      return 2;
    }
  }

  sim::SweepResult sweep;
  try {
    sweep = sim::RunSweep(setup, heuristic, variant, run);
  } catch (const sim::CheckpointError& error) {
    std::cerr << "run_experiment_cli: " << error.what() << "\n";
    return 2;
  }

  for (const sim::TrialFailure& failure : sweep.failures) {
    std::cerr << "trial failed: heuristic=" << failure.heuristic
              << " filter=" << failure.filter_variant
              << " trial=" << failure.trial_index << " after "
              << failure.attempts
              << (failure.attempts == 1 ? " attempt" : " attempts")
              << (failure.timed_out ? " (timed out)" : "") << ": "
              << failure.error << "\n";
  }

  if (csv) {
    stats::Table table({"trial", "missed", "completed", "discarded", "late",
                        "over_budget", "cancelled", "energy", "exhausted_at",
                        "makespan"});
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
      const sim::TrialResult& trial = sweep.results[i];
      table.AddRow({std::to_string(sweep.trial_indices[i]),
                    std::to_string(trial.missed_deadlines),
                    std::to_string(trial.completed),
                    std::to_string(trial.discarded),
                    std::to_string(trial.finished_late),
                    std::to_string(trial.on_time_but_over_budget),
                    std::to_string(trial.cancelled),
                    stats::Table::Num(trial.total_energy, 0),
                    trial.energy_exhausted_at
                        ? stats::Table::Num(*trial.energy_exhausted_at, 1)
                        : "-",
                    stats::Table::Num(trial.makespan, 1)});
    }
    table.PrintCsv(std::cout);
    return sweep.complete() ? 0 : 1;
  }

  std::vector<double> misses;
  misses.reserve(sweep.results.size());
  for (const sim::TrialResult& trial : sweep.results) {
    misses.push_back(static_cast<double>(trial.missed_deadlines));
  }
  std::cout << heuristic << " (" << variant << "), seed " << seed << ", "
            << run.num_trials << " trials, budget x" << budget_scale << ":\n";
  if (!misses.empty()) {
    std::cout << "  missed deadlines: " << stats::Summarize(misses) << "\n";
  } else {
    std::cout << "  no completed trials\n";
  }
  if (sweep.trials_resumed > 0 || sweep.trials_retried > 0 ||
      !sweep.failures.empty()) {
    std::cout << "  harness: " << sweep.trials_resumed << " resumed, "
              << sweep.trials_retried << " retried, " << sweep.failures.size()
              << " failed\n";
  }
  const sim::SummaryStatistics summary = sim::SummarizeSweep(sweep);
  if (run.fault.enabled() && !sweep.results.empty()) {
    std::cout << "  faults (recovery="
              << fault::RecoveryPolicyName(run.recovery) << "): mean failures "
              << summary.mean_failures << ", mean tasks lost "
              << summary.mean_tasks_lost << ", mean remapped "
              << summary.mean_remapped << " (on time "
              << summary.mean_remapped_on_time << ")\n";
  }
  if (run.validation != validate::ValidationMode::kOff) {
    std::cout << "  validation (" << validate::ValidationModeName(run.validation)
              << "): " << summary.validation_checks << " checks, "
              << summary.validation_violations << " violations\n";
  }
  if (run.collect_counters && !sweep.results.empty()) {
    std::cout << '\n' << summary << '\n';
  }
  if (!run.trace_path.empty()) {
    std::cout << "trace written to " << run.trace_path << "\n";
  }
  if (!run.checkpoint_path.empty()) {
    std::cout << "checkpoint written to " << run.checkpoint_path << "\n";
  }
  return sweep.complete() ? 0 : 1;
}
