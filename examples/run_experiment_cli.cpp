// Command-line experiment driver: run any (heuristic, filter variant)
// configuration with custom seed/trials/policies and emit either a summary
// table or per-trial CSV — the entry point for scripting sweeps outside the
// provided bench binaries.
//
// The CLI is a thin veneer over one declarative policy::ScenarioSpec: flags
// edit fields of the spec, --spec FILE loads a canonical spec as the
// baseline, and --print-spec emits the effective spec (the exact text
// --spec accepts back) instead of running — so a flag soup can be frozen
// into a reproducible, diffable artifact. Policy names are validated
// against the live registries, so a heuristic or filter registered by a
// downstream user (see examples/custom_heuristic.cpp) works here by name
// with no CLI changes.
//
// Long runs are crash-safe: --checkpoint streams every completed trial to an
// append-only JSONL file, and --resume skips the trials already recorded
// there — the merged run is bit-identical to an uninterrupted one. See
// EXPERIMENTS.md, "Long runs: checkpoint, resume, watchdog".
//
// Every flag value is validated up front: a bad spelling or number produces
// a one-line diagnostic naming the flag and the valid choices and exits
// with status 2 (trial failures exit with status 1).
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "batch/batch_heuristics.hpp"
#include "core/factory.hpp"
#include "core/gang_placement.hpp"
#include "econ/econ_model.hpp"
#include "experiment/paper_config.hpp"
#include "fault/recovery.hpp"
#include "governor/governor.hpp"
#include "policy/scenario_spec.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stream/admission.hpp"
#include "stats/table_writer.hpp"
#include "validate/validation.hpp"
#include "workload/workload_generator.hpp"

namespace {

void PrintUsage(std::ostream& os, const char* argv0) {
  using ecdra::core::FilterRegistry;
  using ecdra::core::HeuristicRegistry;
  os << "usage: " << argv0 << " [options]  (--flag value or --flag=value)\n"
     << "scenario (defaults = the paper's §VI study):\n"
     << "  --spec FILE        load a canonical ScenarioSpec as the baseline\n"
     << "                     (later flags override individual fields)\n"
     << "  --print-spec       print the effective spec and exit (the output\n"
     << "                     is exactly what --spec accepts back)\n"
     << "  --heuristic NAME   registered: " << HeuristicRegistry().JoinedNames()
     << "\n"
     << "                     (default LL)\n"
     << "  --variant NAME     none, or '+'-joined registered filters\n"
     << "                     (registered: " << FilterRegistry().JoinedNames()
     << "; default en+rob)\n"
     << "  --trials N         Monte-Carlo trials        (default 50)\n"
     << "  --seed S           master seed               (default paper's)\n"
     << "  --budget-scale X   scale zeta_max by X       (default 1.0)\n"
     << "  --idle POLICY      deepest | stay | gated    (default deepest)\n"
     << "  --cancel POLICY    never | hopeless          (default never)\n"
     << "  --rho-thresh P     robustness threshold      (default 0.5)\n"
     << "  --fault-mtbf T     mean time to permanent core failure\n"
     << "                     (simulated seconds; 0 = fault-free, default)\n"
     << "  --fault-duration T mean outage before a failed core is repaired\n"
     << "                     (0 = failures are permanent, default)\n"
     << "  --throttle-interval T / --throttle-duration T / --throttle-floor S\n"
     << "                     transient P-state throttling (0 = off)\n"
     << "  --domain-mtbf T    mean time to whole-domain outage (simulated\n"
     << "                     seconds; 0 = no domain faults, default)\n"
     << "  --domain-repair T  mean outage before a downed domain repairs\n"
     << "                     (0 = outages are permanent, default)\n"
     << "  --cascade-throttle propagate per-core throttles to every core in\n"
     << "                     the same fault domain\n"
     << "  --fault-domains S  correlated fault-domain layout, comma-separated\n"
     << "                     'name:lo-hi' flat-core ranges covering every\n"
     << "                     core (default: one domain per cluster node)\n"
     << "  --recovery POLICY  " << ecdra::fault::RecoveryPolicyNames()
     << "  (default drop)\n"
     << "  --governor NAME    online energy governor (registered: "
     << ecdra::governor::GovernorRegistry().JoinedNames() << ";\n"
     << "                     default static = the paper's open-loop run)\n"
     << "streaming service mode (rolling energy-rate budget; src/stream):\n"
     << "  --stream           run in streaming mode (requires --energy-rate\n"
     << "                     or a spec with stream.energy_rate > 0)\n"
     << "  --energy-rate R    joules per second accruing into the account\n"
     << "  --stream-window T  rolling metrics window, simulated seconds\n"
     << "                     (0 = derived from the environment, default)\n"
     << "  --accrual-cap J    account ceiling in joules (0 = derived)\n"
     << "  --admission NAME   admission policy (registered: "
     << ecdra::stream::AdmissionRegistry().JoinedNames() << ";\n"
     << "                     default none = admit everything)\n"
     << "  --degraded-enter F / --degraded-exit F\n"
     << "                     degraded-mode hysteresis on the fraction of\n"
     << "                     cores lost to faults, 0 <= exit < enter <= 1\n"
     << "                     (default 0.25 / 0.1)\n"
     << "  --degraded-rho-scale X\n"
     << "                     multiply rho admission thresholds by X while\n"
     << "                     degraded (>= 1; default 1.5)\n"
     << "gang jobs and precedence chains (src/workload/job.hpp):\n"
     << "  --jobs             generate map->reduce jobs instead of\n"
     << "                     independent tasks (stage widths/depths drawn\n"
     << "                     from the --job-widths / --job-depths mixes)\n"
     << "  --job-widths LIST  comma-separated width@probability classes,\n"
     << "                     e.g. 1@0.5,4@0.5 (default 1@1)\n"
     << "  --job-depths LIST  comma-separated depth@probability classes\n"
     << "                     (stages per job; default 1@1)\n"
     << "  --job-deadline-scale X\n"
     << "                     stretch job deadlines by X relative to the\n"
     << "                     equivalent independent-task deadline (>= 1;\n"
     << "                     default 1)\n"
     << "  --gang-policy NAME gang placement heuristic (registered: "
     << ecdra::core::GangPlacementRegistry().JoinedNames() << ";\n"
     << "                     default pack)\n"
     << "economics and SLA tiers (src/econ):\n"
     << "  --econ             attach the econ model: tasks carry value and\n"
     << "                     an SLA tier, trials meter revenue against the\n"
     << "                     energy bill (try heuristic econ-greedy,\n"
     << "                     filter ...+sla, admission value-density,\n"
     << "                     governor profit-guard)\n"
     << "  --econ-values LIST comma-separated per-type revenue values,\n"
     << "                     cycled over task types (e.g. 1,5,20;\n"
     << "                     default 1)\n"
     << "  --sla-tiers LIST   comma-separated name@vmult@smult@rhofloor@prob\n"
     << "                     tiers, e.g. gold@3@2@0.9@0.2,be@1@1@0@0.8\n"
     << "                     (default: one neutral tier)\n"
     << "  --energy-price X   price charged per joule drawn (default 0 =\n"
     << "                     free energy)\n"
     << "  --value-decay W    late finishes earn linearly decaying revenue\n"
     << "                     over W simulated seconds past the deadline\n"
     << "                     (default 0 = late earns nothing)\n"
     << "  --list-policies    print every registered heuristic, filter,\n"
     << "                     batch heuristic, governor, admission, gang\n"
     << "                     placement, and recovery policy, then exit\n"
     << "  --validate MODE    off | cheap | deep runtime invariant checks\n"
     << "                     (default off; violations are recorded, not\n"
     << "                     fatal)\n"
     << "output / crash-safe harness (not part of the spec):\n"
     << "  --csv              per-trial CSV instead of the summary table\n"
     << "  --counters         collect per-trial scheduler counters and\n"
     << "                     print the cross-trial aggregate\n"
     << "  --trace-out PATH   write a JSONL decision/energy trace (one\n"
     << "                     record per arrival; implies --counters)\n"
     << "  --checkpoint PATH  append each completed trial to a JSONL\n"
     << "                     checkpoint (header pins seed + config)\n"
     << "  --resume           skip trials already in the --checkpoint file;\n"
     << "                     the merged run is bit-identical to an\n"
     << "                     uninterrupted one (physical damage beyond a\n"
     << "                     torn tail line is refused)\n"
     << "  --resume-salvage   like --resume, but truncate the checkpoint to\n"
     << "                     its longest valid prefix first (CRC-verified),\n"
     << "                     reporting how many damaged records re-run\n"
     << "  --trial-timeout T  wall-clock watchdog per trial attempt, real\n"
     << "                     seconds (0 = off, default)\n"
     << "  --max-retries N    extra attempts after a failed/timed-out trial\n"
     << "                     (same substreams; default 0)\n";
}

/// One-line usage diagnostic -> stderr, exit 2 (trial failures use exit 1).
[[noreturn]] void Fail(const std::string& message) {
  std::cerr << "run_experiment_cli: " << message << "\n";
  std::exit(2);
}

/// Strict numeric parsing: the whole value must be consumed, no locale, no
/// silent truncation — "10x", "", and "1e999" all fail with a diagnostic.
std::uint64_t ParseUint64(std::string_view flag, const std::string& value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      value.empty()) {
    Fail(std::string(flag) + ": '" + value +
         "' is not a non-negative integer");
  }
  return parsed;
}

double ParseDouble(std::string_view flag, const std::string& value) {
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      value.empty()) {
    Fail(std::string(flag) + ": '" + value + "' is not a number");
  }
  return parsed;
}

double ParseNonNegative(std::string_view flag, const std::string& value) {
  const double parsed = ParseDouble(flag, value);
  if (parsed < 0.0) {
    Fail(std::string(flag) + ": '" + value + "' must be >= 0");
  }
  return parsed;
}

/// "value@probability,value@probability" -> shape classes, the CLI-side
/// mirror of the spec's env.workload.jobs.widths/.depths syntax. Values must
/// be >= 1 (a width-0 gang or depth-0 chain is meaningless); probabilities
/// must be > 0 — the generator normalizes them, so 1@3,4@1 reads "3:1 odds".
std::vector<ecdra::workload::ShapeClass> ParseShapeClasses(
    std::string_view flag, const std::string& value) {
  std::vector<ecdra::workload::ShapeClass> classes;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string token =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    const std::size_t at = token.find('@');
    if (at == std::string::npos) {
      Fail(std::string(flag) + ": '" + token +
           "' is not a value@probability class (e.g. 4@0.5)");
    }
    const std::uint64_t shape = ParseUint64(flag, token.substr(0, at));
    const double probability = ParseDouble(flag, token.substr(at + 1));
    if (shape == 0) Fail(std::string(flag) + ": shape values must be >= 1");
    if (probability <= 0.0) {
      Fail(std::string(flag) + ": class probabilities must be > 0");
    }
    classes.push_back(ecdra::workload::ShapeClass{
        static_cast<std::size_t>(shape), probability});
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (classes.empty()) Fail(std::string(flag) + ": empty class list");
  return classes;
}

/// "1,5,20" -> per-type value table (env.econ.values syntax). Values must
/// be >= 0; the model cycles the list over task types.
std::vector<double> ParseEconValues(std::string_view flag,
                                    const std::string& value) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string token =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    const double v = ParseDouble(flag, token);
    if (v < 0.0) Fail(std::string(flag) + ": values must be >= 0");
    values.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (values.empty()) Fail(std::string(flag) + ": empty value list");
  return values;
}

/// "gold@3@2@0.9@0.2,be@1@1@0@0.8" -> SLA tiers (env.econ.tiers syntax):
/// name @ value multiplier @ fair-share multiplier @ rho floor @ mix
/// probability. The generator normalizes probabilities.
std::vector<ecdra::econ::SlaTier> ParseSlaTiers(std::string_view flag,
                                                const std::string& value) {
  std::vector<ecdra::econ::SlaTier> tiers;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    std::string token =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    std::vector<std::string> parts;
    std::size_t part_start = 0;
    while (part_start <= token.size()) {
      const std::size_t at = token.find('@', part_start);
      parts.push_back(token.substr(
          part_start,
          at == std::string::npos ? std::string::npos : at - part_start));
      if (at == std::string::npos) break;
      part_start = at + 1;
    }
    if (parts.size() != 5 || parts[0].empty()) {
      Fail(std::string(flag) + ": '" + token +
           "' is not a name@vmult@smult@rhofloor@prob tier");
    }
    ecdra::econ::SlaTier tier;
    tier.name = parts[0];
    tier.value_multiplier = ParseDouble(flag, parts[1]);
    tier.share_multiplier = ParseDouble(flag, parts[2]);
    tier.rho_floor = ParseDouble(flag, parts[3]);
    tier.probability = ParseDouble(flag, parts[4]);
    if (tier.value_multiplier < 0.0 || tier.share_multiplier < 0.0) {
      Fail(std::string(flag) + ": tier multipliers must be >= 0");
    }
    if (tier.rho_floor < 0.0 || tier.rho_floor > 1.0) {
      Fail(std::string(flag) + ": rho floors must be in [0, 1]");
    }
    if (tier.probability <= 0.0) {
      Fail(std::string(flag) + ": tier probabilities must be > 0");
    }
    tiers.push_back(std::move(tier));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (tiers.empty()) Fail(std::string(flag) + ": empty tier list");
  return tiers;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecdra;

  // Everything a flag can change about *what runs* lives in the spec; the
  // paper's scenario is the baseline. Output and harness mechanics (CSV,
  // counters, traces, checkpointing, watchdog/retries) stay outside it —
  // they cannot change what a trial computes.
  policy::ScenarioSpec spec = experiment::PaperScenario();
  std::string heuristic = "LL";
  std::string variant = "en+rob";
  double budget_scale = 1.0;
  bool csv = false;
  bool resume = false;
  bool salvage = false;
  bool print_spec = false;
  bool collect_counters = false;
  std::string trace_path;
  std::string checkpoint_path;
  double trial_timeout = 0.0;
  std::size_t max_attempts = 1;

  // Split "--flag=value" into a flag and an inline value; "--flag value"
  // consumes the next argument instead.
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string flag = args[i];
    std::optional<std::string> inline_value;
    if (const std::size_t eq = flag.find('=');
        flag.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
    }
    bool value_used = false;
    const auto next = [&]() -> std::string {
      value_used = true;
      if (inline_value) return *inline_value;
      if (i + 1 >= args.size()) Fail(flag + ": missing value");
      return args[++i];
    };

    if (flag == "--help" || flag == "-h") {
      PrintUsage(std::cout, argv[0]);
      return 0;
    } else if (flag == "--list-policies") {
      // Machine-friendly inventory of every policy registry — including
      // anything a downstream example registered before main() ran.
      std::cout << "heuristics: " << core::HeuristicRegistry().JoinedNames()
                << "\nfilters: " << core::FilterRegistry().JoinedNames()
                << "\nbatch-heuristics: "
                << batch::BatchHeuristicRegistry().JoinedNames()
                << "\ngovernors: "
                << governor::GovernorRegistry().JoinedNames()
                << "\nadmission: " << stream::AdmissionRegistry().JoinedNames()
                << "\ngang-placements: "
                << core::GangPlacementRegistry().JoinedNames()
                << "\nrecovery: " << fault::RecoveryPolicyNames() << "\n";
      return 0;
    } else if (flag == "--spec") {
      const std::string path = next();
      std::ifstream is(path);
      if (!is.good()) Fail("--spec: cannot read '" + path + "'");
      std::ostringstream text;
      text << is.rdbuf();
      try {
        spec = policy::ParseScenarioSpec(text.str());
      } catch (const std::invalid_argument& error) {
        Fail("--spec: " + path + ": " + error.what());
      }
    } else if (flag == "--print-spec") {
      print_spec = true;
    } else if (flag == "--heuristic") {
      heuristic = next();
      if (!core::HeuristicRegistry().Contains(heuristic)) {
        Fail("--heuristic: unknown heuristic '" + heuristic + "' (registered: " +
             core::HeuristicRegistry().JoinedNames() + ")");
      }
    } else if (flag == "--variant") {
      variant = next();
      // A variant is "none" or '+'-joined registered filter names; building
      // the chain is the validation (unknown names throw listing the keys).
      try {
        (void)core::MakeFilterChain(variant, spec.filter_options);
      } catch (const std::invalid_argument& error) {
        Fail("--variant: " + std::string(error.what()) +
             "; compose filters with '+', e.g. en+rob");
      }
    } else if (flag == "--trials") {
      spec.num_trials = static_cast<std::size_t>(ParseUint64(flag, next()));
      if (spec.num_trials == 0) Fail("--trials: must be >= 1");
    } else if (flag == "--seed") {
      spec.master_seed = ParseUint64(flag, next());
    } else if (flag == "--budget-scale") {
      budget_scale = ParseDouble(flag, next());
      if (budget_scale <= 0.0) Fail("--budget-scale: must be > 0");
    } else if (flag == "--idle") {
      const std::string value = next();
      const auto parsed = policy::ParseIdlePolicy(value);
      if (!parsed) {
        Fail("--idle: unknown policy '" + value +
             "' (valid: deepest, stay, gated)");
      }
      spec.idle_policy = *parsed;
    } else if (flag == "--cancel") {
      const std::string value = next();
      const auto parsed = policy::ParseCancelPolicy(value);
      if (!parsed) {
        Fail("--cancel: unknown policy '" + value +
             "' (valid: never, hopeless)");
      }
      spec.cancel_policy = *parsed;
    } else if (flag == "--rho-thresh") {
      spec.filter_options.robustness_threshold =
          ParseNonNegative(flag, next());
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--counters") {
      collect_counters = true;
    } else if (flag == "--trace-out") {
      trace_path = next();
      collect_counters = true;
    } else if (flag == "--fault-mtbf") {
      spec.fault.mtbf = ParseNonNegative(flag, next());
    } else if (flag == "--fault-duration") {
      spec.fault.repair_time = ParseNonNegative(flag, next());
    } else if (flag == "--throttle-interval") {
      spec.fault.throttle_interval = ParseNonNegative(flag, next());
    } else if (flag == "--throttle-duration") {
      spec.fault.throttle_duration = ParseNonNegative(flag, next());
    } else if (flag == "--throttle-floor") {
      spec.fault.throttle_floor =
          static_cast<std::size_t>(ParseUint64(flag, next()));
      if (spec.fault.throttle_floor >= cluster::kNumPStates) {
        Fail("--throttle-floor: must be < " +
             std::to_string(cluster::kNumPStates));
      }
    } else if (flag == "--domain-mtbf") {
      spec.fault.domain_mtbf = ParseNonNegative(flag, next());
    } else if (flag == "--domain-repair") {
      spec.fault.domain_repair_time = ParseNonNegative(flag, next());
    } else if (flag == "--cascade-throttle") {
      spec.fault.cascade_throttle = true;
    } else if (flag == "--fault-domains") {
      // Validated against the sampled cluster at trial setup
      // (fault::ResolveFaultDomains); the CLI only carries the text.
      spec.fault_domains = next();
    } else if (flag == "--recovery") {
      const std::string value = next();
      try {
        spec.recovery = fault::ParseRecoveryPolicy(value);
      } catch (const std::invalid_argument&) {
        Fail("--recovery: unknown policy '" + value + "' (valid: " +
             std::string(fault::RecoveryPolicyNames()) + ")");
      }
    } else if (flag == "--governor") {
      spec.governor = next();
      if (!governor::GovernorRegistry().Contains(spec.governor)) {
        Fail("--governor: unknown governor '" + spec.governor +
             "' (registered: " + governor::GovernorRegistry().JoinedNames() +
             ")");
      }
    } else if (flag == "--stream") {
      spec.mode = policy::RunMode::kStream;
    } else if (flag == "--energy-rate") {
      spec.stream.energy_rate = ParseNonNegative(flag, next());
      if (spec.stream.energy_rate == 0.0) {
        Fail("--energy-rate: must be > 0");
      }
    } else if (flag == "--stream-window") {
      spec.stream.window_length = ParseNonNegative(flag, next());
    } else if (flag == "--accrual-cap") {
      spec.stream.accrual_cap = ParseNonNegative(flag, next());
    } else if (flag == "--admission") {
      spec.stream.admission = next();
      if (!stream::AdmissionRegistry().Contains(spec.stream.admission)) {
        Fail("--admission: unknown policy '" + spec.stream.admission +
             "' (registered: " + stream::AdmissionRegistry().JoinedNames() +
             ")");
      }
    } else if (flag == "--degraded-enter") {
      spec.stream.degraded_enter_fraction = ParseNonNegative(flag, next());
    } else if (flag == "--degraded-exit") {
      spec.stream.degraded_exit_fraction = ParseNonNegative(flag, next());
    } else if (flag == "--degraded-rho-scale") {
      spec.stream.degraded_rho_scale = ParseNonNegative(flag, next());
      if (spec.stream.degraded_rho_scale < 1.0) {
        Fail("--degraded-rho-scale: must be >= 1");
      }
    } else if (flag == "--jobs") {
      spec.environment.workload.jobs.enabled = true;
    } else if (flag == "--job-widths") {
      spec.environment.workload.jobs.widths = ParseShapeClasses(flag, next());
    } else if (flag == "--job-depths") {
      spec.environment.workload.jobs.depths = ParseShapeClasses(flag, next());
    } else if (flag == "--job-deadline-scale") {
      spec.environment.workload.jobs.deadline_scale =
          ParseNonNegative(flag, next());
      if (spec.environment.workload.jobs.deadline_scale < 1.0) {
        Fail("--job-deadline-scale: must be >= 1");
      }
    } else if (flag == "--gang-policy") {
      spec.jobs_placement = next();
      if (!core::GangPlacementRegistry().Contains(spec.jobs_placement)) {
        Fail("--gang-policy: unknown placement '" + spec.jobs_placement +
             "' (registered: " +
             core::GangPlacementRegistry().JoinedNames() + ")");
      }
    } else if (flag == "--econ") {
      spec.econ_enabled = true;
      // A bare --econ should meter something: default every type to unit
      // value unless --econ-values overrides it.
      if (spec.econ.type_values.empty()) spec.econ.type_values = {1.0};
    } else if (flag == "--econ-values") {
      spec.econ.type_values = ParseEconValues(flag, next());
    } else if (flag == "--sla-tiers") {
      spec.econ.tiers = ParseSlaTiers(flag, next());
    } else if (flag == "--energy-price") {
      spec.econ.energy_price = ParseDouble(flag, next());
      if (spec.econ.energy_price < 0.0) Fail("--energy-price: must be >= 0");
    } else if (flag == "--value-decay") {
      spec.econ.value_decay = ParseDouble(flag, next());
      if (spec.econ.value_decay < 0.0) Fail("--value-decay: must be >= 0");
    } else if (flag == "--checkpoint") {
      checkpoint_path = next();
      if (checkpoint_path.empty()) Fail("--checkpoint: empty path");
    } else if (flag == "--resume") {
      resume = true;
    } else if (flag == "--resume-salvage") {
      resume = true;
      salvage = true;
    } else if (flag == "--trial-timeout") {
      trial_timeout = ParseNonNegative(flag, next());
    } else if (flag == "--max-retries") {
      max_attempts = 1 + static_cast<std::size_t>(ParseUint64(flag, next()));
    } else if (flag == "--validate") {
      const std::string value = next();
      const auto mode = validate::ParseValidationMode(value);
      if (!mode) {
        Fail("--validate: unknown mode '" + value +
             "' (valid: off, cheap, deep)");
      }
      spec.validation = *mode;
    } else {
      std::cerr << "run_experiment_cli: unknown flag '" << args[i] << "'\n";
      PrintUsage(std::cerr, argv[0]);
      return 2;
    }
    if (inline_value && !value_used) {
      Fail(flag + ": does not take a value");
    }
  }
  if (resume && checkpoint_path.empty()) {
    Fail(std::string(salvage ? "--resume-salvage" : "--resume") +
         " requires --checkpoint PATH");
  }
  spec.environment.budget_task_count *= budget_scale;

  if (print_spec) {
    std::cout << policy::CanonicalSpecText(spec);
    return 0;
  }

  const sim::ExperimentSetup setup = sim::BuildExperimentSetup(spec);
  sim::RunOptions run;
  try {
    run = sim::RunOptionsFromSpec(spec);
  } catch (const policy::StreamSpecError& error) {
    // Typed refusal: a stream block without --stream (or vice versa) names
    // the incompatible fields in one line.
    Fail(error.what());
  }
  run.collect_counters = collect_counters;
  run.trace_path = trace_path;
  run.checkpoint_path = checkpoint_path;
  run.trial_timeout = trial_timeout;
  run.max_attempts = max_attempts;

  std::optional<sim::CheckpointStore> store;
  if (resume) {
    try {
      // --resume tolerates exactly one kind of damage: a final line cut
      // mid-write by a crash is dropped and that trial re-runs. Anything
      // else (wrong schema, wrong config, CRC mismatch, malformed interior
      // record) refuses loudly. --resume-salvage additionally truncates the
      // file to its longest CRC-valid prefix and re-runs everything after
      // it — still refusing logical mismatches (wrong schema/seed/config).
      store = sim::CheckpointStore::Load(
          run.checkpoint_path,
          {.allow_partial_tail = true, .salvage = salvage});
      run.resume = &*store;
      if (store->dropped_records() > 0) {
        std::cerr << "note: salvage dropped " << store->dropped_records()
                  << (store->dropped_records() == 1
                          ? " damaged checkpoint record"
                          : " damaged checkpoint records")
                  << "; re-running from the last valid trial\n";
      } else if (!store->header_valid()) {
        std::cerr << "note: salvage found a damaged checkpoint header; "
                     "starting the checkpoint over\n";
      } else if (store->dropped_partial_tail()) {
        std::cerr << "note: dropped a checkpoint record cut mid-write; "
                     "re-running that trial\n";
      }
    } catch (const sim::CheckpointError& error) {
      std::cerr << "run_experiment_cli: cannot resume: " << error.what()
                << "\n";
      return 2;
    }
  }

  sim::SweepResult sweep;
  try {
    sweep = sim::RunSweep(setup, heuristic, variant, run);
  } catch (const sim::CheckpointError& error) {
    std::cerr << "run_experiment_cli: " << error.what() << "\n";
    return 2;
  }

  for (const sim::TrialFailure& failure : sweep.failures) {
    std::cerr << "trial failed: heuristic=" << failure.heuristic
              << " filter=" << failure.filter_variant
              << " trial=" << failure.trial_index << " after "
              << failure.attempts
              << (failure.attempts == 1 ? " attempt" : " attempts")
              << (failure.timed_out ? " (timed out)" : "") << ": "
              << failure.error << "\n";
  }

  if (csv) {
    stats::Table table({"trial", "missed", "completed", "discarded", "late",
                        "over_budget", "cancelled", "energy", "exhausted_at",
                        "makespan"});
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
      const sim::TrialResult& trial = sweep.results[i];
      table.AddRow({std::to_string(sweep.trial_indices[i]),
                    std::to_string(trial.missed_deadlines),
                    std::to_string(trial.completed),
                    std::to_string(trial.discarded),
                    std::to_string(trial.finished_late),
                    std::to_string(trial.on_time_but_over_budget),
                    std::to_string(trial.cancelled),
                    stats::Table::Num(trial.total_energy, 0),
                    trial.energy_exhausted_at
                        ? stats::Table::Num(*trial.energy_exhausted_at, 1)
                        : "-",
                    stats::Table::Num(trial.makespan, 1)});
    }
    table.PrintCsv(std::cout);
    return sweep.complete() ? 0 : 1;
  }

  std::vector<double> misses;
  misses.reserve(sweep.results.size());
  for (const sim::TrialResult& trial : sweep.results) {
    misses.push_back(static_cast<double>(trial.missed_deadlines));
  }
  std::cout << heuristic << " (" << variant << ")"
            << (run.governor != "static" ? " [" + run.governor + "]" : "")
            << ", seed " << spec.master_seed
            << ", " << run.num_trials << " trials, budget x" << budget_scale
            << ":\n";
  if (!misses.empty()) {
    std::cout << "  missed deadlines: " << stats::Summarize(misses) << "\n";
  } else {
    std::cout << "  no completed trials\n";
  }
  if (sweep.trials_resumed > 0 || sweep.trials_retried > 0 ||
      !sweep.failures.empty()) {
    std::cout << "  harness: " << sweep.trials_resumed << " resumed, "
              << sweep.trials_retried << " retried, " << sweep.failures.size()
              << " failed\n";
  }
  const sim::SummaryStatistics summary = sim::SummarizeSweep(sweep);
  if (run.fault.enabled() && !sweep.results.empty()) {
    std::cout << "  faults (recovery="
              << fault::RecoveryPolicyName(run.recovery) << "): mean failures "
              << summary.mean_failures << ", mean tasks lost "
              << summary.mean_tasks_lost << ", mean remapped "
              << summary.mean_remapped << " (on time "
              << summary.mean_remapped_on_time << ")\n";
    if (summary.mean_domain_outages > 0.0 || summary.mean_migrated > 0.0) {
      std::cout << "    domains: mean outages " << summary.mean_domain_outages
                << ", mean migrated " << summary.mean_migrated << " (on time "
                << summary.mean_migrated_on_time << ")\n";
    }
  }
  if (run.mode == policy::RunMode::kStream && !sweep.results.empty()) {
    std::cout << "  stream (admission=" << run.stream.admission
              << "): mean deferred " << summary.mean_stream_deferred
              << ", dropped " << summary.mean_stream_dropped << ", released "
              << summary.mean_stream_released << ", emergency "
              << summary.mean_emergency_seconds << " s\n";
  }
  if (summary.job_trials > 0) {
    std::cout << "  jobs (placement=" << run.gang_placement
              << "): mean on time " << summary.mean_jobs_on_time
              << ", failed " << summary.mean_jobs_failed
              << ", gangs placed " << summary.mean_gangs_placed
              << ", waits " << summary.mean_gang_waits << " ("
              << summary.mean_gang_wait_seconds << " s)\n";
  }
  if (summary.econ_trials > 0) {
    std::cout << "  econ (price=" << run.econ.energy_price
              << "/J): mean revenue " << summary.mean_revenue
              << ", energy cost " << summary.mean_energy_cost
              << ", net profit " << summary.mean_net_profit
              << " (offered " << summary.mean_value_offered << ")\n";
  }
  if (run.validation != validate::ValidationMode::kOff) {
    std::cout << "  validation (" << validate::ValidationModeName(run.validation)
              << "): " << summary.validation_checks << " checks, "
              << summary.validation_violations << " violations\n";
  }
  if (run.collect_counters && !sweep.results.empty()) {
    std::cout << '\n' << summary << '\n';
  }
  if (!run.trace_path.empty()) {
    std::cout << "trace written to " << run.trace_path << "\n";
  }
  if (!run.checkpoint_path.empty()) {
    std::cout << "checkpoint written to " << run.checkpoint_path << "\n";
  }
  return sweep.complete() ? 0 : 1;
}
