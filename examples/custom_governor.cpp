// Extension example: plugging your own online energy governor into the
// engine — in one file, with no engine edits. A Governor closes the loop
// the paper leaves open: the static fair-share filter budgets energy once
// per assignment, then the run burns open-loop. Registering a governor
// under a string name (ECDRA_REGISTER_GOVERNOR) makes it reachable from
// every stock harness — RunTrials, the figure benches, the CLI --governor
// flag, and the ScenarioSpec "run.governor" key.
//
// Here we write StepDownGovernor, a deliberately simple two-mode
// controller:
//
//   * while the trailing consumption ratio zeta(t)/zeta_max runs ahead of
//     elapsed time t/horizon, cap every core one P-state below its top
//     speed (floor = 1) and park whatever sits idle;
//   * once consumption falls back in line, lift the caps (floor = 0).
//
// It acts only through the three GovernorHost verbs, so every forced
// transition lands in the per-core nu lists and the Eq. 1/2 post-hoc
// accounting stays exactly reconciled with the online meter — the engine
// guarantees that, not the governor.
//
//   ./examples/custom_governor [num_trials]   (default 10)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "experiment/paper_config.hpp"
#include "governor/governor.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"

namespace {

using namespace ecdra;

/// Caps and parks while energy consumption runs ahead of the linear budget
/// schedule; lifts the caps once it falls back in line.
class StepDownGovernor final : public governor::Governor {
 public:
  [[nodiscard]] std::string_view name() const override { return "step-down"; }

  // Re-evaluate after every completion (the moments energy jumps) plus a
  // coarse tick so quiet stretches still get parked.
  [[nodiscard]] governor::GovernorCadence cadence() const override {
    return governor::GovernorCadence{.on_completion = true,
                                     .tick_period = 200.0};
  }

  void Govern(const governor::GovernorObservation& observation,
              governor::GovernorHost& host) override {
    if (observation.budget <= 0.0 || observation.horizon <= 0.0) return;
    const double burn_ratio = observation.consumed / observation.budget;
    const double time_ratio = observation.now / observation.horizon;
    const bool ahead = burn_ratio > time_ratio;

    const cluster::PStateIndex floor = ahead ? 1 : 0;
    for (std::size_t flat = 0; flat < observation.cores.size(); ++flat) {
      host.SetPStateFloor(flat, floor);
      const governor::CoreView& core = observation.cores[flat];
      if (ahead && !core.busy && !core.parked) (void)host.ParkIdleCore(flat);
    }
  }
};

}  // namespace

// The whole integration: after this line, "step-down" resolves anywhere a
// governor name does — sim::RunOptions::governor below, but equally
// `run_experiment_cli --governor step-down` or `run.governor = step-down`
// in a scenario spec, if this translation unit is linked in.
ECDRA_REGISTER_GOVERNOR("step-down",
                        [] { return std::make_unique<StepDownGovernor>(); })

int main(int argc, char** argv) {
  const std::size_t num_trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  std::cout << "== Custom governor vs the open-loop baseline (" << num_trials
            << " trials, LL en+rob) ==\n\n";

  stats::Table table({"governor", "median missed", "median energy used %",
                      "caps", "parks"});
  const auto add = [&](const std::string& governor) {
    sim::RunOptions options;
    options.num_trials = num_trials;
    options.collect_counters = true;
    options.governor = governor;
    std::vector<double> misses;
    std::vector<double> used;
    std::uint64_t caps = 0;
    std::uint64_t parks = 0;
    for (const sim::TrialResult& trial :
         sim::RunTrials(setup, "LL", "en+rob", options)) {
      misses.push_back(static_cast<double>(trial.missed_deadlines));
      used.push_back(100.0 * trial.total_energy / setup.energy_budget);
      caps += trial.counters.governor_pstate_caps;
      parks += trial.counters.governor_cores_parked;
    }
    table.AddRow({governor, stats::Table::Num(stats::Summarize(misses).median, 1),
                  stats::Table::Num(stats::Summarize(used).median, 1),
                  std::to_string(caps), std::to_string(parks)});
  };

  add("static");
  add("step-down");

  table.PrintText(std::cout);
  std::cout << "\nthe step-down controller trades peak speed for headroom "
               "whenever consumption runs ahead of the linear budget "
               "schedule; the action counts show it engaging, and the "
               "energy column shows the closed loop holding the run nearer "
               "its budget than the paper's open-loop filter alone.\n";
  return 0;
}
