// Extension example: plugging your own heuristic and filter into the
// scheduler — in one file, with no factory edits. Everything the paper's
// heuristics see — queue lengths, expected execution/energy scalars,
// stochastic completion probabilities — is exposed through MappingContext,
// so a downstream policy is a single Select() function. Here we write:
//
//   * MinimumEnergyHeuristic — greedily picks the lowest-EEC assignment
//     (what LL degrades to when every rho is ~0), and
//   * DeadlineSlackFilter — drops assignments whose *expected* completion
//     would land within a safety margin of the deadline (a deterministic
//     cousin of the paper's robustness filter),
//
// register both under string names (ECDRA_REGISTER_HEURISTIC /
// ECDRA_REGISTER_FILTER), and then drive them through the *stock*
// sim::RunTrials harness by name — "MinEnergy" with the "en+slack" variant —
// exactly like a built-in. Registration is the whole integration surface.
//
//   ./examples/custom_heuristic [num_trials]   (default 10)
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/factory.hpp"
#include "core/filter.hpp"
#include "core/heuristic.hpp"
#include "experiment/paper_config.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"

namespace {

using namespace ecdra;

/// Pick the assignment with the smallest expected energy consumption.
class MinimumEnergyHeuristic final : public core::Heuristic {
 public:
  [[nodiscard]] std::optional<core::Candidate> Select(
      const core::MappingContext& ctx) override {
    const auto& candidates = ctx.candidates();
    if (candidates.empty()) return std::nullopt;
    const core::Candidate* best = &candidates.front();
    for (const core::Candidate& candidate : candidates) {
      if (candidate.eec < best->eec) best = &candidate;
    }
    return *best;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "MinEnergy";
  }
};

/// Drop assignments whose expected completion time leaves less than
/// `margin` x EET of slack before the deadline.
class DeadlineSlackFilter final : public core::Filter {
 public:
  explicit DeadlineSlackFilter(double margin) : margin_(margin) {}

  void Apply(core::MappingContext& ctx) override {
    std::erase_if(ctx.candidates(), [&ctx, this](const core::Candidate& c) {
      return ctx.ExpectedCompletionTime(c) + margin_ * c.eet >
             ctx.task().deadline;
    });
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "slack";
  }

 private:
  double margin_;
};

}  // namespace

// The whole integration: after these two lines, "MinEnergy" and "slack" are
// first-class citizens of every harness that takes policy names — RunTrials,
// RunSweep, the figure benches, the CLI. Composite variants like "en+slack"
// compose the custom filter with the paper's energy filter for free.
ECDRA_REGISTER_HEURISTIC("MinEnergy", [](util::RngStream) {
  return std::make_unique<MinimumEnergyHeuristic>();
})
ECDRA_REGISTER_FILTER("slack", [](const core::FilterChainOptions&) {
  return std::make_unique<DeadlineSlackFilter>(0.5);
})

int main(int argc, char** argv) {
  const std::size_t num_trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  std::cout << "== Custom policies vs the paper's filtered LL (" << num_trials
            << " trials) ==\n\n";

  stats::Table table({"policy", "median missed", "Q1", "Q3"});
  sim::RunOptions options;
  options.num_trials = num_trials;
  const auto add = [&](const std::string& heuristic,
                       const std::string& variant, const std::string& label) {
    std::vector<double> misses;
    for (const sim::TrialResult& trial :
         sim::RunTrials(setup, heuristic, variant, options)) {
      misses.push_back(static_cast<double>(trial.missed_deadlines));
    }
    const stats::BoxWhisker box = stats::Summarize(misses);
    table.AddRow({label, stats::Table::Num(box.median, 1),
                  stats::Table::Num(box.q1, 1), stats::Table::Num(box.q3, 1)});
  };

  add("MinEnergy", "en", "MinEnergy (en)");
  add("MinEnergy", "en+slack", "MinEnergy (en + slack filter)");
  add("LL", "en+rob", "LL (en+rob) — paper's best");

  table.PrintText(std::cout);
  std::cout << "\ngreedy energy minimization without completion-awareness "
               "loses almost every task during bursts; adding a simple "
               "deadline-slack filter makes the same heuristic competitive "
               "with (here even better than) the paper's LL — filters, not "
               "heuristic sophistication, drive performance, which is the "
               "paper's central claim.\n";
  return 0;
}
