// Extension example: plugging your own heuristic and filter into the
// scheduler. Everything the paper's heuristics see — queue lengths, expected
// execution/energy scalars, stochastic completion probabilities — is exposed
// through MappingContext, so a downstream policy is a single Select()
// function. Here we write:
//
//   * MinimumEnergyHeuristic — greedily picks the lowest-EEC assignment
//     (what LL degrades to when every rho is ~0), and
//   * DeadlineSlackFilter — drops assignments whose *expected* completion
//     would land within a safety margin of the deadline (a deterministic
//     cousin of the paper's robustness filter).
//
// and race them against the paper's filtered LL on the §VI workload.
//
//   ./examples/custom_heuristic [num_trials]   (default 10)
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/factory.hpp"
#include "core/filter.hpp"
#include "core/heuristic.hpp"
#include "core/scheduler.hpp"
#include "experiment/paper_config.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_runner.hpp"
#include "stats/summary.hpp"
#include "stats/table_writer.hpp"
#include "workload/workload_generator.hpp"

namespace {

using namespace ecdra;

/// Pick the assignment with the smallest expected energy consumption.
class MinimumEnergyHeuristic final : public core::Heuristic {
 public:
  [[nodiscard]] std::optional<core::Candidate> Select(
      const core::MappingContext& ctx) override {
    const auto& candidates = ctx.candidates();
    if (candidates.empty()) return std::nullopt;
    const core::Candidate* best = &candidates.front();
    for (const core::Candidate& candidate : candidates) {
      if (candidate.eec < best->eec) best = &candidate;
    }
    return *best;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "MinEnergy";
  }
};

/// Drop assignments whose expected completion time leaves less than
/// `margin` x EET of slack before the deadline.
class DeadlineSlackFilter final : public core::Filter {
 public:
  explicit DeadlineSlackFilter(double margin) : margin_(margin) {}

  void Apply(core::MappingContext& ctx) override {
    std::erase_if(ctx.candidates(), [&ctx, this](const core::Candidate& c) {
      return ctx.ExpectedCompletionTime(c) + margin_ * c.eet >
             ctx.task().deadline;
    });
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "slack";
  }

 private:
  double margin_;
};

/// Runs `num_trials` trials of a custom scheduler configuration using the
/// library's building blocks directly (the long way around RunTrials, which
/// only knows the built-in names).
stats::BoxWhisker RunCustom(const sim::ExperimentSetup& setup,
                            std::size_t num_trials, bool with_slack_filter) {
  std::vector<double> misses;
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    util::RngStream trial_rng =
        util::RngStream(setup.master_seed).Substream("trial", trial);
    util::RngStream workload_rng = trial_rng.Substream("workload");
    std::vector<workload::Task> tasks =
        workload::GenerateWorkload(setup.types, setup.workload, workload_rng);

    std::vector<std::unique_ptr<core::Filter>> filters =
        core::MakeFilterChain("en");  // reuse the paper's energy filter
    if (with_slack_filter) {
      filters.push_back(std::make_unique<DeadlineSlackFilter>(0.5));
    }
    core::ImmediateModeScheduler scheduler(
        setup.cluster, setup.types, std::make_unique<MinimumEnergyHeuristic>(),
        std::move(filters), setup.energy_budget, setup.window_size);

    sim::TrialOptions options;
    options.energy_budget = setup.energy_budget;
    sim::Engine engine(setup.cluster, setup.types, std::move(tasks), scheduler,
                       options, trial_rng.Substream("sim"));
    misses.push_back(static_cast<double>(engine.Run().missed_deadlines));
  }
  return stats::Summarize(misses);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  std::cout << "== Custom policies vs the paper's filtered LL (" << num_trials
            << " trials) ==\n\n";

  stats::Table table({"policy", "median missed", "Q1", "Q3"});
  const auto add = [&table](const std::string& name,
                            const stats::BoxWhisker& box) {
    table.AddRow({name, stats::Table::Num(box.median, 1),
                  stats::Table::Num(box.q1, 1), stats::Table::Num(box.q3, 1)});
  };

  add("MinEnergy (en)", RunCustom(setup, num_trials, false));
  add("MinEnergy (en + slack filter)", RunCustom(setup, num_trials, true));

  sim::RunOptions options;
  options.num_trials = num_trials;
  std::vector<double> ll_misses;
  for (const sim::TrialResult& trial :
       sim::RunTrials(setup, "LL", "en+rob", options)) {
    ll_misses.push_back(static_cast<double>(trial.missed_deadlines));
  }
  add("LL (en+rob) — paper's best", stats::Summarize(ll_misses));

  table.PrintText(std::cout);
  std::cout << "\ngreedy energy minimization without completion-awareness "
               "loses almost every task during bursts; adding a simple "
               "deadline-slack filter makes the same heuristic competitive "
               "with (here even better than) the paper's LL — filters, not "
               "heuristic sophistication, drive performance, which is the "
               "paper's central claim.\n";
  return 0;
}
