// Quickstart: build the paper's §VI environment, run a handful of trials of
// the filtered Lightest Load scheduler, and print what happened.
//
//   ./examples/quickstart [num_trials]
#include <cstdlib>
#include <iostream>

#include "experiment/paper_config.hpp"
#include "sim/experiment_runner.hpp"

int main(int argc, char** argv) {
  using namespace ecdra;

  std::size_t num_trials = 3;
  if (argc > 1) num_trials = static_cast<std::size_t>(std::atoi(argv[1]));

  // One-time environment construction: 8-node heterogeneous cluster, CVB
  // execution-time pmfs, deadlines, and the energy budget zeta_max.
  const sim::ExperimentSetup setup = experiment::BuildPaperSetup();
  std::cout << "cluster: " << setup.cluster.num_nodes() << " nodes, "
            << setup.cluster.total_cores() << " cores\n"
            << "t_avg (grand mean exec time): " << setup.t_avg << "\n"
            << "p_avg (mean core power):      " << setup.p_avg << " W\n"
            << "energy budget zeta_max:       " << setup.energy_budget << "\n"
            << "window: " << setup.window_size << " tasks\n\n";

  sim::RunOptions options;
  options.num_trials = num_trials;

  // The paper's best configuration: Lightest Load with both filters.
  for (const sim::TrialResult& trial :
       sim::RunTrials(setup, "LL", "en+rob", options)) {
    std::cout << trial << "\n";
  }
  return 0;
}
